package broker

import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"padres/internal/message"
	"padres/internal/metrics"
	"padres/internal/predicate"
	"padres/internal/transport"
)

// walChurnEvery sets the routing-churn mix of the WAL-overhead workload:
// one subscribe/unsubscribe pair per this many publications. Mobility-era
// workloads are publication-dominated — movements arrive seconds apart
// while publications flow continuously — so the WAL (which logs only
// routing-state mutations, never publications) sees a small minority of
// the dispatched messages.
const walChurnEvery = 64

// BenchmarkWALOverhead measures what enabling the write-ahead log costs the
// broker's publication dispatch hot path: the same publication stream with
// a realistic sprinkle of routing churn runs through an in-memory broker
// and a durable one (DataDir set). Every churn mutation in the durable
// testbed is handed to the group-commit WAL; the budget holds that handoff
// — and the flusher running beside dispatch — to <= 5% of per-publication
// cost.
//
// The two modes run as two independent testbeds and the benchmark
// alternates between them in small chunks inside one timed run, so slow
// drift in machine load hits both modes equally instead of biasing
// whichever mode happened to run later. Per-mode costs are reported as the
// custom metrics off-ns/op and on-ns/op — the pair benchjson reads for the
// <= 5% durability budget (BENCH_wal.json).
func BenchmarkWALOverhead(b *testing.B) {
	off := newWALBench(b, "")
	defer off.close()
	on := newWALBench(b, b.TempDir())
	defer on.close()

	// WAL appends are encoded and fsynced by the flusher goroutine off the
	// dispatch path, so what the chunks time is the enqueue handoff plus
	// whatever contention the flusher causes — exactly the durability tax
	// on dispatch. Raising the GC target for the duration removes most
	// collection pauses from the samples; both modes benefit identically.
	defer debug.SetGCPercent(debug.SetGCPercent(400))

	const chunk = 2048
	var offNs, onNs []float64
	b.ResetTimer()
	// Chunks are always full-size (the op count rounds b.N up) so every
	// sample carries equal weight and no runt tail chunk adds noise.
	for done, i := 0, 0; done < b.N; done, i = done+chunk, i+1 {
		var offDur, onDur time.Duration
		if i%2 == 1 {
			onDur = on.run(b, chunk)
			offDur = off.run(b, chunk)
		} else {
			offDur = off.run(b, chunk)
			onDur = on.run(b, chunk)
		}
		offNs = append(offNs, float64(offDur.Nanoseconds())/chunk)
		onNs = append(onNs, float64(onDur.Nanoseconds())/chunk)
	}
	b.StopTimer()
	offTyp, onTyp := walMidmean(offNs), walMidmean(onNs)
	b.ReportMetric(offTyp, "off-ns/op")
	b.ReportMetric(onTyp, "on-ns/op")
	b.ReportMetric((onTyp/offTyp-1)*100, "overhead-pct")
}

// walMidmean is the interquartile mean: the average of the middle half of
// the samples — the chunks an outlier (GC pause, checkpoint, scheduler
// hiccup) landed in are discarded, the central samples averaged.
func walMidmean(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	lo, hi := len(s)/4, len(s)-len(s)/4
	if hi == lo {
		lo, hi = 0, len(s)
	}
	var sum float64
	for _, v := range s[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}

// walBench is one single-broker testbed shaped like benchDispatch: a PRT of
// benchSubs subscriptions (one matching, the rest window filters) so every
// publication pays a realistic matching scan before local delivery.
type walBench struct {
	reg       *metrics.Registry
	nw        *transport.Network
	bk        *Broker
	delivered atomic.Int64
	filter    *predicate.Filter
	event     predicate.Event
	pubs      int // publication counter: IDs + churn cadence
	churn     int // unique churn-subscription counter
}

func newWALBench(b *testing.B, dataDir string) *walBench {
	b.Helper()
	wb := &walBench{
		reg:    metrics.NewRegistry(),
		filter: predicate.MustParse("[x,>,0]"),
		event:  predicate.Event{"x": predicate.Number(42)},
	}
	wb.nw = transport.NewNetwork(wb.reg)
	bk, err := New(Config{ID: "b1", Net: wb.nw, DataDir: dataDir})
	if err != nil {
		b.Fatal(err)
	}
	wb.bk = bk
	bk.Start()
	bk.AttachClient(message.ClientNode("cs", "b1"), func(message.Publish) { wb.delivered.Add(1) })
	bk.Inject(message.ClientNode("cp", "b1"), message.Advertise{ID: "a1", Client: "cp", Filter: wb.filter})
	bk.Inject(message.ClientNode("cs", "b1"), message.Subscribe{ID: "s1", Client: "cs", Filter: wb.filter})
	for i := 1; i < benchSubs; i++ {
		f := predicate.MustParse(fmt.Sprintf("[x,>,%d],[x,<,%d]", 1000+16*i, 1016+16*i))
		bk.Inject(message.ClientNode("cs", "b1"), message.Subscribe{ID: message.SubID(fmt.Sprintf("s%d", i+1)), Client: "cs", Filter: f})
	}
	deadline := time.Now().Add(10 * time.Second)
	for bk.Stats().PRTSize < benchSubs {
		if time.Now().After(deadline) {
			b.Fatal("subscriptions never installed")
		}
		time.Sleep(time.Millisecond)
	}
	return wb
}

// run injects k publications (with the walChurnEvery routing-churn mix
// woven in) and waits for the matching subscriber to receive all of them.
// The serial dispatch lane is FIFO, so the last publication's delivery
// means every prior mutation was dispatched too. Churn retracts what it
// adds, keeping the PRT — and thus per-publication matching cost — fixed.
func (wb *walBench) run(b *testing.B, k int) time.Duration {
	b.Helper()
	target := wb.delivered.Load() + int64(k)
	pubNode := message.ClientNode("cp", "b1")
	subNode := message.ClientNode("cs", "b1")
	start := time.Now()
	for i := 0; i < k; i++ {
		wb.pubs++
		if wb.pubs%walChurnEvery == 0 {
			id := message.SubID(fmt.Sprintf("c%d", wb.churn))
			wb.churn++
			wb.bk.Inject(subNode, message.Subscribe{ID: id, Client: "cs", Filter: wb.filter})
			wb.bk.Inject(subNode, message.Unsubscribe{ID: id, Client: "cs"})
		}
		wb.bk.Inject(pubNode, message.Publish{ID: message.PubID(fmt.Sprintf("p%d", wb.pubs)), Event: wb.event})
	}
	deadline := time.Now().Add(120 * time.Second)
	for wb.delivered.Load() < target {
		if time.Now().After(deadline) {
			b.Fatalf("delivered %d of %d", wb.delivered.Load(), target)
		}
		time.Sleep(20 * time.Microsecond)
	}
	return time.Since(start)
}

func (wb *walBench) close() {
	wb.bk.Stop()
	wb.nw.Close()
}
