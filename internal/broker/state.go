package broker

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"padres/internal/message"
	"padres/internal/predicate"
)

// This file implements the durability sketch of Sec. 3.5: a broker's
// algorithmic state — the advertisements and subscriptions in its routing
// tables plus the per-link forwarding sets the covering optimization
// depends on — can be exported (persisted) and restored into a replacement
// broker, so that a crashed broker resumes routing where it left off.
// Queue state (in-flight messages) is the transport's concern; the paper's
// model recovers it with persistent queues, which the in-process harness
// approximates by re-delivering through the protocols' retry/abort paths.

// RecordState is one serialized routing-table record.
type RecordState struct {
	ID      string
	Client  message.ClientID
	Filter  *predicate.Filter
	LastHop message.NodeID
}

// State is a broker's serializable algorithmic state.
type State struct {
	ID       message.BrokerID
	SRT      []RecordState
	PRT      []RecordState
	SentSubs map[message.SubID][]message.NodeID
	SentAdvs map[message.AdvID][]message.NodeID
}

// ExportState snapshots the broker's algorithmic state. Safe to call while
// the broker is running; the snapshot is consistent per table.
func (b *Broker) ExportState() *State {
	st := &State{
		ID:       b.cfg.ID,
		SentSubs: make(map[message.SubID][]message.NodeID),
		SentAdvs: make(map[message.AdvID][]message.NodeID),
	}
	for _, rec := range b.srt.All() {
		st.SRT = append(st.SRT, RecordState{
			ID: rec.ID, Client: rec.Client, Filter: rec.Filter, LastHop: rec.LastHop,
		})
	}
	for _, rec := range b.prt.All() {
		st.PRT = append(st.PRT, RecordState{
			ID: rec.ID, Client: rec.Client, Filter: rec.Filter, LastHop: rec.LastHop,
		})
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, set := range b.sentSubs {
		for n, ok := range set {
			if ok {
				st.SentSubs[id] = append(st.SentSubs[id], n)
			}
		}
	}
	for id, set := range b.sentAdvs {
		for n, ok := range set {
			if ok {
				st.SentAdvs[id] = append(st.SentAdvs[id], n)
			}
		}
	}
	return st
}

// RestoreState loads a snapshot into the broker. Call before Start, on a
// fresh broker that replaces a crashed one.
func (b *Broker) RestoreState(st *State) error {
	if st.ID != b.cfg.ID {
		return fmt.Errorf("state belongs to broker %s, not %s", st.ID, b.cfg.ID)
	}
	for _, rec := range st.SRT {
		b.srt.Insert(message.AdvID(rec.ID), rec.Client, rec.Filter, rec.LastHop)
	}
	for _, rec := range st.PRT {
		b.prt.Insert(message.SubID(rec.ID), rec.Client, rec.Filter, rec.LastHop)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, nodes := range st.SentSubs {
		set := make(map[message.NodeID]bool, len(nodes))
		for _, n := range nodes {
			set[n] = true
		}
		b.sentSubs[id] = set
	}
	for id, nodes := range st.SentAdvs {
		set := make(map[message.NodeID]bool, len(nodes))
		for _, n := range nodes {
			set[n] = true
		}
		b.sentAdvs[id] = set
	}
	return nil
}

// Marshal serializes the state for stable storage.
func (st *State) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("marshal broker state: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalState deserializes a broker state snapshot.
func UnmarshalState(data []byte) (*State, error) {
	var st State
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("unmarshal broker state: %w", err)
	}
	return &st, nil
}
