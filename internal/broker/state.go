package broker

import (
	"fmt"
	"sort"

	"padres/internal/message"
	"padres/internal/predicate"
	"padres/internal/wire"
)

// This file implements the durability sketch of Sec. 3.5: a broker's
// algorithmic state — the advertisements and subscriptions in its routing
// tables plus the per-link forwarding sets the covering optimization
// depends on — can be exported (persisted) and restored into a replacement
// broker, so that a crashed broker resumes routing where it left off.
// Queue state (in-flight messages) is the transport's concern; the paper's
// model recovers it with persistent queues, which the in-process harness
// approximates by re-delivering through the protocols' retry/abort paths.

// RecordState is one serialized routing-table record.
type RecordState struct {
	ID      string
	Client  message.ClientID
	Filter  *predicate.Filter
	LastHop message.NodeID
}

// State is a broker's serializable algorithmic state.
type State struct {
	ID       message.BrokerID
	SRT      []RecordState
	PRT      []RecordState
	SentSubs map[message.SubID][]message.NodeID
	SentAdvs map[message.AdvID][]message.NodeID
}

// ExportState snapshots the broker's algorithmic state. Safe to call while
// the broker is running; the snapshot is consistent per table.
func (b *Broker) ExportState() *State {
	st := &State{
		ID:       b.cfg.ID,
		SentSubs: make(map[message.SubID][]message.NodeID),
		SentAdvs: make(map[message.AdvID][]message.NodeID),
	}
	for _, rec := range b.srt.All() {
		st.SRT = append(st.SRT, RecordState{
			ID: rec.ID, Client: rec.Client, Filter: rec.Filter, LastHop: rec.LastHop,
		})
	}
	for _, rec := range b.prt.All() {
		st.PRT = append(st.PRT, RecordState{
			ID: rec.ID, Client: rec.Client, Filter: rec.Filter, LastHop: rec.LastHop,
		})
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, set := range b.sentSubs {
		for n, ok := range set {
			if ok {
				st.SentSubs[id] = append(st.SentSubs[id], n)
			}
		}
	}
	for id, set := range b.sentAdvs {
		for n, ok := range set {
			if ok {
				st.SentAdvs[id] = append(st.SentAdvs[id], n)
			}
		}
	}
	return st
}

// RestoreState loads a snapshot into the broker. Call before Start, on a
// fresh broker that replaces a crashed one.
func (b *Broker) RestoreState(st *State) error {
	if st.ID != b.cfg.ID {
		return fmt.Errorf("state belongs to broker %s, not %s", st.ID, b.cfg.ID)
	}
	for _, rec := range st.SRT {
		b.srt.Insert(message.AdvID(rec.ID), rec.Client, rec.Filter, rec.LastHop)
	}
	for _, rec := range st.PRT {
		b.prt.Insert(message.SubID(rec.ID), rec.Client, rec.Filter, rec.LastHop)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, nodes := range st.SentSubs {
		set := make(map[message.NodeID]bool, len(nodes))
		for _, n := range nodes {
			set[n] = true
		}
		b.sentSubs[id] = set
	}
	for id, nodes := range st.SentAdvs {
		set := make(map[message.NodeID]bool, len(nodes))
		for _, n := range nodes {
			set[n] = true
		}
		b.sentAdvs[id] = set
	}
	return nil
}

// brokerStateVersion is the snapshot schema version. The snapshot uses the
// compact binary wire form (docs/PROTOCOL.md, "Wire codec") with map keys
// in sorted order, so identical state marshals to identical bytes.
const brokerStateVersion = 1

// Marshal serializes the state for stable storage.
func (st *State) Marshal() ([]byte, error) {
	b := []byte{brokerStateVersion}
	b = wire.AppendString(b, string(st.ID))
	b = appendRecords(b, st.SRT)
	b = appendRecords(b, st.PRT)
	b = appendSentSet(b, st.SentSubs)
	b = appendSentSet(b, st.SentAdvs)
	return b, nil
}

// UnmarshalState deserializes a broker state snapshot.
func UnmarshalState(data []byte) (*State, error) {
	ver, b, err := wire.Byte(data)
	if err != nil {
		return nil, fmt.Errorf("unmarshal broker state: %w", err)
	}
	if ver != brokerStateVersion {
		return nil, fmt.Errorf("unmarshal broker state: unsupported version %d", ver)
	}
	st := &State{}
	id, b, err := wire.String(b)
	if err != nil {
		return nil, fmt.Errorf("unmarshal broker state: %w", err)
	}
	st.ID = message.BrokerID(id)
	if st.SRT, b, err = readRecords(b); err != nil {
		return nil, fmt.Errorf("unmarshal broker state: SRT: %w", err)
	}
	if st.PRT, b, err = readRecords(b); err != nil {
		return nil, fmt.Errorf("unmarshal broker state: PRT: %w", err)
	}
	subs, b, err := readSentSet(b)
	if err != nil {
		return nil, fmt.Errorf("unmarshal broker state: sent subs: %w", err)
	}
	advs, b, err := readSentSet(b)
	if err != nil {
		return nil, fmt.Errorf("unmarshal broker state: sent advs: %w", err)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("unmarshal broker state: %d trailing bytes", len(b))
	}
	st.SentSubs = make(map[message.SubID][]message.NodeID, len(subs))
	for id, nodes := range subs {
		st.SentSubs[message.SubID(id)] = nodes
	}
	st.SentAdvs = make(map[message.AdvID][]message.NodeID, len(advs))
	for id, nodes := range advs {
		st.SentAdvs[message.AdvID(id)] = nodes
	}
	return st, nil
}

func appendRecords(b []byte, recs []RecordState) []byte {
	b = wire.AppendUvarint(b, uint64(len(recs)))
	for _, r := range recs {
		b = wire.AppendString(b, r.ID)
		b = wire.AppendString(b, string(r.Client))
		if r.Filter == nil {
			b = append(b, 0)
		} else {
			b = append(b, 1)
			b = r.Filter.AppendBinary(b)
		}
		b = wire.AppendString(b, string(r.LastHop))
	}
	return b
}

func readRecords(b []byte) ([]RecordState, []byte, error) {
	n, b, err := wire.Len(b)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, b, nil
	}
	out := make([]RecordState, 0, n)
	for i := 0; i < n; i++ {
		var r RecordState
		if r.ID, b, err = wire.String(b); err != nil {
			return nil, nil, err
		}
		var client string
		if client, b, err = wire.String(b); err != nil {
			return nil, nil, err
		}
		r.Client = message.ClientID(client)
		var present byte
		if present, b, err = wire.Byte(b); err != nil {
			return nil, nil, err
		}
		if present != 0 {
			if r.Filter, b, err = predicate.ReadFilter(b); err != nil {
				return nil, nil, err
			}
		}
		var hop string
		if hop, b, err = wire.String(b); err != nil {
			return nil, nil, err
		}
		r.LastHop = message.NodeID(hop)
		out = append(out, r)
	}
	return out, b, nil
}

// appendSentSet writes a string-keyed map of node lists with sorted keys.
func appendSentSet[K ~string](b []byte, m map[K][]message.NodeID) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	b = wire.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = wire.AppendString(b, k)
		nodes := m[K(k)]
		b = wire.AppendUvarint(b, uint64(len(nodes)))
		for _, n := range nodes {
			b = wire.AppendString(b, string(n))
		}
	}
	return b
}

func readSentSet(b []byte) (map[string][]message.NodeID, []byte, error) {
	n, b, err := wire.Len(b)
	if err != nil {
		return nil, nil, err
	}
	out := make(map[string][]message.NodeID, n)
	for i := 0; i < n; i++ {
		var k string
		if k, b, err = wire.String(b); err != nil {
			return nil, nil, err
		}
		var cnt int
		if cnt, b, err = wire.Len(b); err != nil {
			return nil, nil, err
		}
		nodes := make([]message.NodeID, 0, cnt)
		for j := 0; j < cnt; j++ {
			var node string
			if node, b, err = wire.String(b); err != nil {
				return nil, nil, err
			}
			nodes = append(nodes, message.NodeID(node))
		}
		out[k] = nodes
	}
	return out, b, nil
}
