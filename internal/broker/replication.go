package broker

import (
	"padres/internal/journal"
	"padres/internal/message"
	"padres/internal/replication"
	"padres/internal/store"
	"padres/internal/telemetry"
)

// This file wires the broker to its replication agent: construction and
// recovery seeding, the durable-store and journal hooks the agent acts
// through, dispatch of the replication message kinds, and the fencing gate
// on MoveAck.

// initReplication builds the agent from Config.Replication (nil or disabled
// leaves the broker without one) and seeds it with recovered replica and
// fence state.
func (b *Broker) initReplication(rec *store.Recovery) {
	cfg := b.cfg.Replication
	if cfg == nil || !cfg.Enabled {
		return
	}
	b.replTel = telemetry.NewReplicationMetrics()
	b.repl = replication.NewAgent(*cfg, replication.Hooks{
		Self:  b.cfg.ID,
		Clock: b.clk,
		Send:  func(m message.Message) { _ = b.SendControl(m) },
		PersistReplica: func(hdr message.MoveHeader, outcome string, gen uint64) error {
			if b.store == nil {
				return nil
			}
			return b.store.AppendSync(store.Record{
				Op: store.OpReplica, Tx: string(hdr.Tx), Client: string(hdr.Client),
				Source: string(hdr.Source), Target: string(hdr.Target),
				Outcome: outcome, Gen: gen,
			})
		},
		PersistFence: func(tx message.TxID, gen uint64) {
			b.wal(store.Record{Op: store.OpFence, Tx: string(tx), Gen: gen})
		},
		Journal:      b.journalReplication,
		KnownOutcome: b.DecidedOutcome,
		Metrics:      b.replTel,
	})
	if rec != nil && rec.State != nil {
		replicas := make(map[message.TxID]store.ReplicaDecision, len(rec.State.Replicas))
		for tx, d := range rec.State.Replicas {
			replicas[message.TxID(tx)] = d
		}
		fences := make(map[message.TxID]uint64, len(rec.State.Fences))
		for tx, g := range rec.State.Fences {
			fences[message.TxID(tx)] = g
		}
		if len(replicas) > 0 || len(fences) > 0 {
			b.repl.Seed(replicas, fences)
		}
	}
}

// journalReplication records one replication protocol step in the flight
// recorder as a protocol record, mirroring how coordinator events land there.
func (b *Broker) journalReplication(kind string, tx message.TxID, cl message.ClientID, detail string) {
	j := b.journal()
	if j == nil || !j.Enabled() {
		return
	}
	site := string(b.cfg.ID)
	j.Add(journal.Record{
		Site: site, Cat: journal.CatProtocol, Kind: kind,
		Lamport: b.clock(j).Tick(), Tx: string(tx), Client: string(cl), Detail: detail,
	})
}

// ReplicationEnabled reports whether this broker runs the replication layer.
func (b *Broker) ReplicationEnabled() bool { return b.repl != nil }

// ReplicationMetrics returns the agent's instruments, or nil without one.
func (b *Broker) ReplicationMetrics() *telemetry.ReplicationMetrics { return b.replTel }

// ReplicationAgent exposes the agent for tests and harnesses (nil without
// replication).
func (b *Broker) ReplicationAgent() *replication.Agent { return b.repl }

// ReplicationPeers returns every broker a decision record for the
// transaction can live at — the preference list (coordinator first) plus
// the hinted-handoff fallback set — or nil when replication is off.
// Recovery queries fan out over this whole set: a commit whose quorum was
// completed through a hint holder is still discoverable after every
// preferred replica died.
func (b *Broker) ReplicationPeers(hdr message.MoveHeader) []message.BrokerID {
	if b.repl == nil {
		return nil
	}
	return b.repl.QueryTargets(hdr)
}

// ReplicateCommit starts the coordinator-side quorum write for a commit
// decision and reports whether replication is engaged; with replication off
// it returns false and the caller proceeds directly. done runs exactly once
// with the quorum verdict.
func (b *Broker) ReplicateCommit(hdr message.MoveHeader, done func(ok bool)) bool {
	if b.repl == nil {
		return false
	}
	b.repl.ReplicateCommit(hdr, done)
	return true
}

// CommitPipelined reports whether the commit decision for this transaction
// may ride ahead of its quorum round: the first standby replica sits on the
// acknowledgement's own path and per-link FIFO serializes its durable
// append before the ack passes, so the coordinator sends the MoveAck
// immediately and defers only the client start to the quorum confirmation.
// False with replication off or when the preference list leaves the path.
func (b *Broker) CommitPipelined(hdr message.MoveHeader) bool {
	return b.repl != nil && b.repl.Pipelined(hdr)
}

// ReplicateAbort replicates an abort decision best-effort.
func (b *Broker) ReplicateAbort(hdr message.MoveHeader) {
	if b.repl != nil {
		b.repl.ReplicateAbort(hdr)
	}
}

// ReplicationRelease stands the transaction's standby replicas down; the
// source coordinator calls it when a movement fully resolves.
func (b *Broker) ReplicationRelease(hdr message.MoveHeader) {
	if b.repl != nil {
		b.repl.Release(hdr)
	}
}

// ReplicationFence returns the fenced coordinator generation for the
// transaction at this broker (0 = unfenced or replication off).
func (b *Broker) ReplicationFence(tx message.TxID) uint64 {
	if b.repl == nil {
		return 0
	}
	return b.repl.FenceGen(tx)
}

// ReplicationOnQuery offers a recovery query addressed to this broker as a
// preference-list member to the agent; false means the container should
// answer it through the coordinator path.
func (b *Broker) ReplicationOnQuery(m message.MoveQuery) bool {
	if b.repl == nil {
		return false
	}
	return b.repl.OnQuery(m)
}

// handleReplication dispatches the replication message kinds: forward toward
// the explicit destination, or hand the arrived message to the agent. A
// broker without an agent still forwards (it may sit on the path between
// two replicated brokers).
func (b *Broker) handleReplication(env message.Envelope) {
	dest, ok := message.Dest(env.Msg)
	if !ok {
		return
	}
	if dest != b.cfg.ID {
		if hop, err := b.nextHopToward(dest); err == nil {
			b.send(hop.Node(), env.Msg)
		}
		return
	}
	if b.repl == nil {
		return
	}
	switch m := env.Msg.(type) {
	case message.ReplicateDecision:
		b.repl.OnReplicateDecision(m)
	case message.ReplicaAck:
		b.repl.OnReplicaAck(m)
	case message.LeaseClaim:
		b.repl.OnLeaseClaim(m)
	}
}

// handleStandbyResolve applies a standby coordinator's resolution at every
// hop it crosses — committing or aborting the prepared reconfiguration
// exactly like MoveAck/MoveAbort — records the fencing generation so stale
// acknowledgements from a superseded coordinator are rejected here, and
// delivers the message to the local container at its destination.
func (b *Broker) handleStandbyResolve(m message.StandbyResolve, from message.NodeID) {
	if m.Outcome == store.PhaseCommitted {
		b.commitReconfig(m.Tx)
	} else {
		b.abortReconfig(m.Tx)
	}
	if b.repl != nil {
		b.repl.ObserveResolve(m)
	}
	if m.To == b.cfg.ID {
		b.deliverControl(message.Envelope{From: from, Msg: m})
		return
	}
	if hop, err := b.nextHopToward(m.To); err == nil {
		b.send(hop.Node(), m)
	}
}
