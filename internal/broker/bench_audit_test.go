package broker

import (
	"runtime/debug"
	"testing"
	"time"

	"padres/internal/audit"
	"padres/internal/journal"
	"padres/internal/message"
)

// BenchmarkAuditStreamOverhead measures what the live invariant auditor
// costs the publication dispatch hot path. Both testbeds run with the
// flight-recorder journal attached (journaling is the observability
// baseline); the instrumented one additionally has a journal tap subscribed
// — the wiring a broker serving /journal/stream carries. The budget holds
// the tap's marginal dispatch cost to <= 5% of per-publication cost: tap
// delivery is a read-lock plus a non-blocking buffered-channel send, and
// the auditor's own ingest work rides the tap's buffer off the dispatch
// goroutines (on a fleet it runs in padres-mon on another host; here each
// chunk's backlog is drained into an audit.Stream between timings, with the
// buffer sized so nothing drops and the audit verdict still gates the run).
// The drained ingest cost is reported separately as audit-ns/op.
//
// As in BenchmarkWALOverhead, the two modes alternate in small chunks
// inside one timed run so machine-load drift hits both equally, and the
// per-mode figures are interquartile means over the chunks. benchjson
// reads the off-ns/op / on-ns/op pair for the budget (BENCH_audit.json,
// `make bench-audit-stream`).
func BenchmarkAuditStreamOverhead(b *testing.B) {
	off := newAuditBench(b, false)
	defer off.close()
	on := newAuditBench(b, true)
	defer on.close()

	defer debug.SetGCPercent(debug.SetGCPercent(400))

	const chunk = 2048
	var offNs, onNs []float64
	b.ResetTimer()
	for done, i := 0, 0; done < b.N; done, i = done+chunk, i+1 {
		var offDur, onDur time.Duration
		if i%2 == 1 {
			onDur = on.run(b, chunk)
			offDur = off.run(b, chunk)
		} else {
			offDur = off.run(b, chunk)
			onDur = on.run(b, chunk)
		}
		offNs = append(offNs, float64(offDur.Nanoseconds())/chunk)
		onNs = append(onNs, float64(onDur.Nanoseconds())/chunk)
	}
	b.StopTimer()
	offTyp, onTyp := walMidmean(offNs), walMidmean(onNs)
	b.ReportMetric(offTyp, "off-ns/op")
	b.ReportMetric(onTyp, "on-ns/op")
	b.ReportMetric((onTyp/offTyp-1)*100, "overhead-pct")
	b.ReportMetric(float64(on.ingestTime.Nanoseconds())/float64(on.pubs), "audit-ns/op")

	// The instrumented testbed must actually have audited the run: every
	// tapped record ingested (none dropped), the run clean, and tracked
	// state bounded (settlement evicting what the watermark passed).
	if d := on.tap.Dropped(); d != 0 {
		b.Fatalf("tap dropped %d records; buffer too small for the chunk size", d)
	}
	st := on.stream.Status()
	if st.Records == 0 {
		b.Fatal("live auditor ingested no records from the tap")
	}
	if !st.Clean() {
		b.Fatalf("live auditor flagged the bench workload: %+v", st.Checks)
	}
}

// auditBench is the telemetry testbed plus the flight recorder, and — in
// live mode — a journal tap drained into a streaming auditor.
type auditBench struct {
	*telemBench
	jnl        *journal.Journal
	tap        *journal.Tap
	stream     *audit.Stream
	batch      []journal.Record
	ingestTime time.Duration
}

func newAuditBench(b *testing.B, live bool) *auditBench {
	b.Helper()
	tb := newTelemBench(b, false)
	ab := &auditBench{telemBench: tb, jnl: journal.New(1 << 16)}
	// The delivery invariant needs the application-queue record the client
	// shim normally writes; mirror it here so the audited stream is clean.
	site := string(message.ClientNode("cs", "b1"))
	tb.bk.AttachClient(message.ClientNode("cs", "b1"), func(m message.Publish) {
		ab.jnl.Add(journal.Record{
			Site: site, Cat: journal.CatClient, Kind: journal.KindClientDeliver,
			Lamport: ab.jnl.ClockOf(site).Tick(), Client: "cs", Ref: string(m.ID),
		})
		tb.delivered.Add(1)
	})
	tb.nw.SetJournal(ab.jnl)
	if live {
		ab.stream = audit.NewStream(audit.StreamOptions{})
		ab.tap = ab.jnl.Subscribe(1 << 15)
	}
	return ab
}

// run times one chunk on the dispatch path, then drains the chunk's tap
// backlog into the auditor outside the timed window.
func (ab *auditBench) run(b *testing.B, k int) time.Duration {
	d := ab.telemBench.run(b, k)
	ab.drain()
	return d
}

// drain empties the tap's buffer into the stream as one batch.
func (ab *auditBench) drain() {
	if ab.tap == nil {
		return
	}
	for {
		select {
		case rec := <-ab.tap.C():
			ab.batch = append(ab.batch, rec)
		default:
			start := time.Now()
			ab.stream.Ingest("bench", ab.batch...)
			ab.ingestTime += time.Since(start)
			ab.batch = ab.batch[:0]
			return
		}
	}
}

func (ab *auditBench) close() {
	if ab.tap != nil {
		ab.tap.Close()
	}
	ab.telemBench.close()
}
