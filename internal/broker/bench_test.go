package broker

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"padres/internal/journal"
	"padres/internal/message"
	"padres/internal/metrics"
	"padres/internal/overlay"
	"padres/internal/predicate"
	"padres/internal/transport"
)

// benchSubs is the PRT population for the dispatch benchmark: one
// matching subscription plus non-matching window filters, so every
// dispatch pays a realistic matching scan (the paper's workloads keep
// hundreds to thousands of subscriptions per broker, not one).
const benchSubs = 256

// benchDispatch measures the broker's publication hot path end to end —
// inject, dequeue, PRT match over benchSubs subscriptions, local delivery
// — on a single broker with one matching subscriber. The journaled
// variant exercises the flight recorder's per-dispatch cost (ring sink);
// comparing the two quantifies the journaling overhead the recorder is
// designed to keep under 5%.
func benchDispatch(b *testing.B, jnl *journal.Journal) {
	b.Helper()
	reg := metrics.NewRegistry()
	net := transport.NewNetwork(reg)
	defer net.Close()
	if jnl != nil {
		net.SetJournal(jnl)
	}
	top := overlay.New()
	if err := top.AddBroker("b1"); err != nil {
		b.Fatal(err)
	}
	hops, err := top.NextHops("b1")
	if err != nil {
		b.Fatal(err)
	}
	br, err := New(Config{ID: "b1", Net: net, Neighbors: top.Neighbors("b1"), NextHops: hops})
	if err != nil {
		b.Fatal(err)
	}
	br.Start()
	defer br.Stop()

	var delivered atomic.Int64
	pubNode := message.ClientNode("cp", "b1")
	subNode := message.ClientNode("cs", "b1")
	br.AttachClient(subNode, func(message.Publish) { delivered.Add(1) })
	br.Inject(pubNode, message.Advertise{ID: "a1", Client: "cp", Filter: predicate.MustParse("[x,>,0]")})
	br.Inject(subNode, message.Subscribe{ID: "s1", Client: "cs", Filter: predicate.MustParse("[x,>,0]")})
	for i := 1; i < benchSubs; i++ {
		f := predicate.MustParse(fmt.Sprintf("[x,>,%d],[x,<,%d]", 1000+16*i, 1016+16*i))
		br.Inject(subNode, message.Subscribe{ID: message.SubID(fmt.Sprintf("s%d", i+1)), Client: "cs", Filter: f})
	}
	deadline := time.Now().Add(5 * time.Second)
	for br.Stats().PRTSize < benchSubs {
		if time.Now().After(deadline) {
			b.Fatal("subscription never installed")
		}
		time.Sleep(time.Millisecond)
	}

	ev := predicate.Event{"x": predicate.Number(42)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Inject(pubNode, message.Publish{ID: message.PubID(fmt.Sprintf("p%d", i)), Event: ev})
	}
	for delivered.Load() < int64(b.N) {
		if time.Now().After(deadline.Add(time.Minute)) {
			b.Fatalf("delivered %d of %d", delivered.Load(), b.N)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

func BenchmarkBrokerDispatch(b *testing.B) {
	benchDispatch(b, nil)
}

func BenchmarkBrokerDispatchJournaled(b *testing.B) {
	benchDispatch(b, journal.New(0))
}

// scalingSubs keeps the scaling benchmark's setup cost (each subscription
// pays the serialized service time) small while still exercising a real
// matching pass.
const scalingSubs = 64

// benchDispatchScaling measures publication-dispatch throughput with the
// fig-8-style per-message service time (the paper's 2 ms broker processing
// cost) at a given pipeline width. With the serial loop every publication
// pays the service time back to back; the pipeline overlaps up to `workers`
// of them, which is where the speedup comes from — by design it does not
// depend on spare CPU cores, so it holds on a single-core host too.
func benchDispatchScaling(b *testing.B, workers int) {
	b.Helper()
	reg := metrics.NewRegistry()
	net := transport.NewNetwork(reg)
	defer net.Close()
	top := overlay.New()
	if err := top.AddBroker("b1"); err != nil {
		b.Fatal(err)
	}
	hops, err := top.NextHops("b1")
	if err != nil {
		b.Fatal(err)
	}
	br, err := New(Config{
		ID: "b1", Net: net, Neighbors: top.Neighbors("b1"), NextHops: hops,
		Workers:     workers,
		ServiceTime: 2 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	br.Start()
	defer br.Stop()

	var delivered atomic.Int64
	pubNode := message.ClientNode("cp", "b1")
	subNode := message.ClientNode("cs", "b1")
	br.AttachClient(subNode, func(message.Publish) { delivered.Add(1) })
	br.Inject(pubNode, message.Advertise{ID: "a1", Client: "cp", Filter: predicate.MustParse("[x,>,0]")})
	br.Inject(subNode, message.Subscribe{ID: "s1", Client: "cs", Filter: predicate.MustParse("[x,>,0]")})
	for i := 1; i < scalingSubs; i++ {
		f := predicate.MustParse(fmt.Sprintf("[x,>,%d],[x,<,%d]", 1000+16*i, 1016+16*i))
		br.Inject(subNode, message.Subscribe{ID: message.SubID(fmt.Sprintf("s%d", i+1)), Client: "cs", Filter: f})
	}
	deadline := time.Now().Add(60 * time.Second)
	for br.Stats().PRTSize < scalingSubs {
		if time.Now().After(deadline) {
			b.Fatal("subscription never installed")
		}
		time.Sleep(time.Millisecond)
	}

	ev := predicate.Event{"x": predicate.Number(42)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Inject(pubNode, message.Publish{ID: message.PubID(fmt.Sprintf("p%d", i)), Event: ev})
	}
	for delivered.Load() < int64(b.N) {
		if time.Now().After(deadline.Add(5 * time.Minute)) {
			b.Fatalf("delivered %d of %d", delivered.Load(), b.N)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// BenchmarkDispatchScaling is the pipeline's acceptance benchmark: ns/op at
// workers=4 must be at least 2x better than workers=1 (cmd/benchjson
// -require-scaling enforces it on BENCH_dispatch.json).
func BenchmarkDispatchScaling(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchDispatchScaling(b, workers)
		})
	}
}
