package broker

import (
	"runtime/debug"
	"testing"
	"time"

	"padres/internal/sim"
)

// clockReadsPerDispatch is a conservative upper bound on the number of
// clock-seam calls (Now/Since) one publication pays on the dispatch path:
// the inbox-wait stamp at enqueue, the wait observation and dispatch stamp
// at dequeue, the match timer pair, the commit-wait and egress-flush
// observations, and slack for the journal stamp.
const clockReadsPerDispatch = 8

// BenchmarkSimClockOverhead bounds what the deterministic simulator's clock
// seam costs the real-time dispatch path. Every time read on the hot path
// goes through the sim.Clock interface now (sim.Wall in production), so the
// seam cannot be toggled off; instead the benchmark measures the realistic
// per-dispatch cost on a live pipeline testbed (on-ns/op) and the seam's
// marginal cost directly — the per-call difference between sim.Wall.Now()
// through the interface and a raw time.Now(), multiplied by the
// clockReadsPerDispatch bound. off-ns/op is the dispatch cost with that
// margin subtracted, i.e. the counterfactual direct-call pipeline. The
// budget holds the indirection to <= 5% of per-publication dispatch cost
// (benchjson -require-sim, BENCH_sim.json, `make bench-sim`).
func BenchmarkSimClockOverhead(b *testing.B) {
	tb := newTelemBench(b, true) // default instrumentation: the production path
	defer tb.close()

	defer debug.SetGCPercent(debug.SetGCPercent(400))

	// Per-call seam cost: interface dispatch to the wall clock vs the raw
	// time package. The interface variable defeats devirtualization, as on
	// the real path where the broker holds a sim.Clock field.
	const probes = 1 << 20
	var clk sim.Clock = sim.Wall
	var sink time.Time
	seamStart := time.Now()
	for i := 0; i < probes; i++ {
		sink = clk.Now()
	}
	seamNs := float64(time.Since(seamStart).Nanoseconds()) / probes
	directStart := time.Now()
	for i := 0; i < probes; i++ {
		sink = time.Now()
	}
	directNs := float64(time.Since(directStart).Nanoseconds()) / probes
	_ = sink
	deltaNs := (seamNs - directNs) * clockReadsPerDispatch
	if deltaNs < 0 {
		deltaNs = 0
	}

	const chunk = 2048
	var onNs []float64
	b.ResetTimer()
	for done := 0; done < b.N; done += chunk {
		dur := tb.run(b, chunk)
		onNs = append(onNs, float64(dur.Nanoseconds())/chunk)
	}
	b.StopTimer()

	onTyp := walMidmean(onNs)
	offTyp := onTyp - deltaNs
	b.ReportMetric(offTyp, "off-ns/op")
	b.ReportMetric(onTyp, "on-ns/op")
	b.ReportMetric(deltaNs/offTyp*100, "overhead-pct")
	b.ReportMetric(seamNs, "seam-ns/call")
}
