package broker

import (
	"sort"
	"strings"

	"padres/internal/journal"
	"padres/internal/matching"
	"padres/internal/message"
	"padres/internal/predicate"
	"padres/internal/store"
)

// shadowSep separates a canonical record ID from the movement transaction
// that created its shadow (the prepared revised routing configuration).
const shadowSep = "~"

func shadowID(id string, tx message.TxID) string { return id + shadowSep + string(tx) }

func isShadowID(id string) bool { return strings.Contains(id, shadowSep) }

func canonicalID(id string) string {
	if i := strings.Index(id, shadowSep); i >= 0 {
		return id[:i]
	}
	return id
}

// --- journaled routing-table mutations --------------------------------------

// jnlRouting records one SRT/PRT mutation; tx attributes it to the movement
// transaction that caused it (empty for ordinary client traffic). The
// auditor replays these records to reconstruct each broker's final tables.
func (b *Broker) jnlRouting(kind, id string, client message.ClientID, lastHop message.NodeID, tx message.TxID) {
	j := b.journal()
	if j == nil {
		return
	}
	j.Add(journal.Record{
		Site: string(b.cfg.ID), Cat: journal.CatRouting, Kind: kind,
		Lamport: b.clock(j).Tick(), Tx: string(tx), Client: string(client),
		Ref: id, To: string(lastHop),
	})
}

// srtInsert, srtRemove, prtInsert, prtRemove are the journaled, write-ahead
// logged forms of the routing-table mutations; all broker code mutates the
// tables through them.
func (b *Broker) srtInsert(id message.AdvID, client message.ClientID, f *predicate.Filter, lastHop message.NodeID, tx message.TxID) {
	b.srt.Insert(id, client, f, lastHop)
	b.jnlRouting(journal.KindSRTInsert, string(id), client, lastHop, tx)
	b.wal(store.Record{
		Op: store.OpSRTInsert, ID: string(id), Client: string(client),
		Filter: f, Hop: string(lastHop), Tx: string(tx),
	})
}

func (b *Broker) srtRemove(id message.AdvID, tx message.TxID) *matching.Record {
	rec := b.srt.Remove(id)
	if rec != nil {
		b.jnlRouting(journal.KindSRTRemove, string(id), rec.Client, rec.LastHop, tx)
		b.wal(store.Record{Op: store.OpSRTRemove, ID: string(id), Tx: string(tx)})
	}
	return rec
}

func (b *Broker) prtInsert(id message.SubID, client message.ClientID, f *predicate.Filter, lastHop message.NodeID, tx message.TxID) {
	b.prt.Insert(id, client, f, lastHop)
	b.jnlRouting(journal.KindPRTInsert, string(id), client, lastHop, tx)
	b.wal(store.Record{
		Op: store.OpPRTInsert, ID: string(id), Client: string(client),
		Filter: f, Hop: string(lastHop), Tx: string(tx),
	})
}

func (b *Broker) prtRemove(id message.SubID, tx message.TxID) *matching.Record {
	rec := b.prt.Remove(id)
	if rec != nil {
		b.jnlRouting(journal.KindPRTRemove, string(id), rec.Client, rec.LastHop, tx)
		b.wal(store.Record{Op: store.OpPRTRemove, ID: string(id), Tx: string(tx)})
	}
	return rec
}

// --- sent-tracking ----------------------------------------------------------

func (b *Broker) wasSentSub(id message.SubID, n message.NodeID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sentSubs[id][n]
}

func (b *Broker) markSentSub(id message.SubID, n message.NodeID) {
	b.mu.Lock()
	set, ok := b.sentSubs[id]
	if !ok {
		set = make(map[message.NodeID]bool)
		b.sentSubs[id] = set
	}
	set[n] = true
	b.mu.Unlock()
	b.wal(store.Record{Op: store.OpSentSubMark, ID: string(id), Hop: string(n)})
}

func (b *Broker) clearSentSub(id message.SubID, n message.NodeID) {
	b.mu.Lock()
	delete(b.sentSubs[id], n)
	b.mu.Unlock()
	b.wal(store.Record{Op: store.OpSentSubClear, ID: string(id), Hop: string(n)})
}

func (b *Broker) sentSubTargets(id message.SubID) []message.NodeID {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]message.NodeID, 0, len(b.sentSubs[id]))
	for n, ok := range b.sentSubs[id] {
		if ok {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (b *Broker) dropSentSub(id message.SubID) {
	b.mu.Lock()
	delete(b.sentSubs, id)
	b.mu.Unlock()
	b.wal(store.Record{Op: store.OpSentSubDrop, ID: string(id)})
}

func (b *Broker) wasSentAdv(id message.AdvID, n message.NodeID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sentAdvs[id][n]
}

func (b *Broker) markSentAdv(id message.AdvID, n message.NodeID) {
	b.mu.Lock()
	set, ok := b.sentAdvs[id]
	if !ok {
		set = make(map[message.NodeID]bool)
		b.sentAdvs[id] = set
	}
	set[n] = true
	b.mu.Unlock()
	b.wal(store.Record{Op: store.OpSentAdvMark, ID: string(id), Hop: string(n)})
}

func (b *Broker) clearSentAdv(id message.AdvID, n message.NodeID) {
	b.mu.Lock()
	delete(b.sentAdvs[id], n)
	b.mu.Unlock()
	b.wal(store.Record{Op: store.OpSentAdvClear, ID: string(id), Hop: string(n)})
}

func (b *Broker) sentAdvTargets(id message.AdvID) []message.NodeID {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]message.NodeID, 0, len(b.sentAdvs[id]))
	for n, ok := range b.sentAdvs[id] {
		if ok {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (b *Broker) dropSentAdv(id message.AdvID) {
	b.mu.Lock()
	delete(b.sentAdvs, id)
	b.mu.Unlock()
	b.wal(store.Record{Op: store.OpSentAdvDrop, ID: string(id)})
}

// --- advertisement handling -------------------------------------------------

func (b *Broker) handleAdvertise(m message.Advertise, from message.NodeID) {
	b.srtInsert(m.ID, m.Client, m.Filter, from, m.TxTag)

	// Advertisements flood: forward to every neighbor except the one the
	// advertisement came from (modulo covering quench).
	for _, n := range b.cfg.Neighbors {
		if n.Node() == from {
			continue
		}
		b.maybeSendAdv(m.ID, m.Client, m.Filter, n.Node(), m.TxTag)
	}

	// Subscriptions that intersect the new advertisement must be forwarded
	// toward it (the advertisement's last hop), unless it was issued by a
	// local client, in which case its publications originate here.
	if !b.isNeighbor(from) {
		return
	}
	for _, rec := range b.prt.Intersecting(m.Filter) {
		if rec.LastHop == from {
			continue
		}
		id := message.SubID(canonicalID(rec.ID))
		b.maybeSendSub(id, rec.Client, rec.Filter, from, m.TxTag)
	}
}

func (b *Broker) handleUnadvertise(m message.Unadvertise, from message.NodeID) {
	rec := b.srtRemove(m.ID, m.TxTag)
	if rec == nil {
		return
	}
	targets := b.sentAdvTargets(m.ID)

	// Un-quench first: advertisements that were covered by the retracted
	// one must now be forwarded, before the unadvertise propagates, so
	// downstream brokers never observe a gap (links are FIFO).
	if b.cfg.Covering {
		for _, n := range targets {
			for _, covered := range b.srt.CoveredBy(rec.Filter, m.ID) {
				if isShadowID(covered.ID) || covered.LastHop == n {
					continue
				}
				b.maybeSendAdv(message.AdvID(covered.ID), covered.Client, covered.Filter, n, m.TxTag)
			}
		}
	}

	for _, n := range targets {
		b.send(n, message.Unadvertise{ID: m.ID, Client: m.Client, TxTag: m.TxTag})
	}
	b.dropSentAdv(m.ID)
}

// maybeSendAdv forwards an advertisement to neighbor n unless it was
// already sent, n is its last hop, or (with covering) a covering
// advertisement was already sent to n. When it does forward and covering is
// enabled, previously forwarded advertisements covered by this one are
// unadvertised over the link — the behaviour that makes covering expensive
// under mobility (Sec. 4.4).
func (b *Broker) maybeSendAdv(id message.AdvID, client message.ClientID, f *predicate.Filter, n message.NodeID, tag message.TxID) {
	if !b.isNeighbor(n) {
		return
	}
	if b.wasSentAdv(id, n) {
		return
	}
	if rec := b.srt.Get(id); rec != nil && rec.LastHop == n {
		return
	}
	if b.cfg.Covering {
		for _, cov := range b.srt.Covering(f, id) {
			if isShadowID(cov.ID) || cov.LastHop == n {
				continue
			}
			if b.wasSentAdv(message.AdvID(cov.ID), n) {
				return // quenched by a covering advertisement
			}
		}
	}
	b.send(n, message.Advertise{ID: id, Client: client, Filter: f, TxTag: tag})
	b.markSentAdv(id, n)
	if b.cfg.Covering {
		for _, covered := range b.srt.CoveredBy(f, id) {
			if isShadowID(covered.ID) {
				continue
			}
			cid := message.AdvID(covered.ID)
			if b.wasSentAdv(cid, n) {
				b.send(n, message.Unadvertise{ID: cid, Client: covered.Client, TxTag: tag})
				b.clearSentAdv(cid, n)
			}
		}
	}
}

// --- subscription handling --------------------------------------------------

func (b *Broker) handleSubscribe(m message.Subscribe, from message.NodeID) {
	b.prtInsert(m.ID, m.Client, m.Filter, from, m.TxTag)

	// Forward toward the last hops of all intersecting advertisements
	// (including prepared shadow configurations, so that movements in
	// progress keep both routes alive).
	seen := make(map[message.NodeID]bool)
	for _, adv := range b.srt.Intersecting(m.Filter) {
		d := adv.LastHop
		if d == from || seen[d] {
			continue
		}
		seen[d] = true
		b.maybeSendSub(m.ID, m.Client, m.Filter, d, m.TxTag)
	}
}

func (b *Broker) handleUnsubscribe(m message.Unsubscribe, from message.NodeID) {
	rec := b.prtRemove(m.ID, m.TxTag)
	if rec == nil {
		return
	}
	targets := b.sentSubTargets(m.ID)

	// Un-quench before propagating the unsubscription: subscriptions that
	// were covered by the retracted one — and therefore never forwarded —
	// must now be sent wherever they are needed. With covering enabled this
	// is the cascade that makes moving a covering (root) subscription
	// expensive.
	if b.cfg.Covering {
		for _, n := range targets {
			for _, covered := range b.prt.CoveredBy(rec.Filter, m.ID) {
				if isShadowID(covered.ID) || covered.LastHop == n {
					continue
				}
				if !b.subNeedsHop(covered, n) {
					continue
				}
				id := message.SubID(canonicalID(covered.ID))
				b.maybeSendSub(id, covered.Client, covered.Filter, n, m.TxTag)
			}
		}
	}

	for _, n := range targets {
		b.send(n, message.Unsubscribe{ID: m.ID, Client: m.Client, TxTag: m.TxTag})
	}
	b.dropSentSub(m.ID)
}

// subNeedsHop reports whether the subscription must be forwarded to n to
// reach some advertisement whose last hop is n.
func (b *Broker) subNeedsHop(rec *matching.Record, n message.NodeID) bool {
	for _, adv := range b.srt.Intersecting(rec.Filter) {
		if adv.LastHop == n {
			return true
		}
	}
	return false
}

// maybeSendSub forwards a subscription to neighbor n unless it was already
// sent, n is its last hop, or (with covering) a covering subscription was
// already forwarded to n. When it does forward with covering enabled,
// previously forwarded subscriptions covered by this one are unsubscribed
// over the link.
func (b *Broker) maybeSendSub(id message.SubID, client message.ClientID, f *predicate.Filter, n message.NodeID, tag message.TxID) {
	if !b.isNeighbor(n) {
		return
	}
	if b.wasSentSub(id, n) {
		return
	}
	if rec := b.prt.Get(id); rec != nil && rec.LastHop == n {
		return
	}
	if b.cfg.Covering {
		for _, cov := range b.prt.Covering(f, id) {
			if isShadowID(cov.ID) || cov.LastHop == n {
				continue
			}
			if b.wasSentSub(message.SubID(cov.ID), n) {
				return // quenched by a covering subscription
			}
		}
	}
	b.send(n, message.Subscribe{ID: id, Client: client, Filter: f, TxTag: tag})
	b.markSentSub(id, n)
	if b.cfg.Covering {
		for _, covered := range b.prt.CoveredBy(f, id) {
			if isShadowID(covered.ID) {
				continue
			}
			cid := message.SubID(covered.ID)
			if b.wasSentSub(cid, n) {
				b.send(n, message.Unsubscribe{ID: cid, Client: covered.Client, TxTag: tag})
				b.clearSentSub(cid, n)
			}
		}
	}
}

// --- publication handling ---------------------------------------------------

// planPublish matches a publication against the routing tables and returns
// its outbound actions (forwards and local deliveries) without performing
// them. It reads the tables through their lock-free match snapshots, so the
// parallel dispatch workers call it concurrently; the serial lane executes
// the plan inline via handlePublish.
func (b *Broker) planPublish(m message.Publish, from message.NodeID) []pubAction {
	t0 := b.clk.Now()
	// A publication is valid only if some advertisement (from its
	// publisher's flooded advertisement tree) matches it.
	if !b.srt.MatchAny(m.Event) {
		b.tel.MatchLatency.Observe(b.clk.Since(t0))
		b.tel.DroppedPublications.Inc()
		return nil
	}
	matched := b.prt.Match(m.Event)
	b.tel.MatchLatency.Observe(b.clk.Since(t0))
	var actions []pubAction
	seen := make(map[message.NodeID]bool)
	for _, sub := range matched {
		d := sub.LastHop
		if d == from || seen[d] {
			continue
		}
		seen[d] = true
		switch {
		case b.isNeighbor(d):
			actions = append(actions, pubAction{dest: d})
		default:
			if deliver := b.localClient(d); deliver != nil {
				actions = append(actions, pubAction{dest: d, deliver: deliver, subClient: sub.Client})
			}
			// Otherwise the last hop is stale (e.g. a detached client):
			// drop silently.
		}
	}
	return actions
}

func (b *Broker) handlePublish(m message.Publish, from message.NodeID) {
	for _, a := range b.planPublish(m, from) {
		if a.deliver == nil {
			b.send(a.dest, m)
			continue
		}
		b.journalDeliver(m, a.subClient, a.dest)
		a.deliver(m)
	}
}

// journalDeliver records a local client delivery in the flight recorder.
func (b *Broker) journalDeliver(m message.Publish, client message.ClientID, to message.NodeID) {
	j := b.journal()
	if j == nil {
		return
	}
	j.Add(journal.Record{
		Site: string(b.cfg.ID), Cat: journal.CatBroker, Kind: journal.KindDeliver,
		Lamport: b.clock(j).Tick(), Tx: string(m.TxTag),
		Client: string(client), Ref: string(m.ID), To: string(to),
	})
}
