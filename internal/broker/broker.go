// Package broker implements a content-based publish/subscribe broker in the
// PADRES style: a Subscription Routing Table (SRT) of advertisements routes
// subscriptions toward publishers, and a Publication Routing Table (PRT) of
// subscriptions routes publications toward subscribers, hop-by-hop over an
// acyclic overlay.
//
// The broker supports two features central to the paper:
//
//   - The covering optimization (Sec. 2): forwarding of subscriptions
//     (advertisements) already covered by previously forwarded ones is
//     quenched, and retracting a covering filter un-quenches — and therefore
//     floods — the filters it covered. This un-quenching cascade is the
//     pathology the paper attributes to the traditional covering-based
//     movement protocol.
//
//   - The hop-by-hop routing reconfiguration protocol (Sec. 4.4): brokers on
//     the unique path between a movement's source and target brokers prepare
//     a revised routing configuration rc(adv') next to the existing rc(adv),
//     keeping both active until the movement transaction commits (delete old)
//     or aborts (delete revised), which confines movement traffic to the
//     path.
//
// Each broker runs a single goroutine that drains an unbounded FIFO inbox;
// an optional per-message service time models broker processing cost so
// that propagation bursts congest the broker queues, as they do in the
// paper's testbed.
package broker

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"padres/internal/journal"
	"padres/internal/matching"
	"padres/internal/message"
	"padres/internal/replication"
	"padres/internal/sim"
	"padres/internal/store"
	"padres/internal/telemetry"
	"padres/internal/transport"
)

// ControlSink receives movement control messages whose destination is this
// broker's coordinator. The callback runs on the broker's processing
// goroutine and must not block.
type ControlSink func(env message.Envelope)

// ClientDeliver receives notifications for a client co-located with the
// broker (in its mobile container). Delivery is synchronous with the
// broker's message processing, which mirrors the paper's model of clients
// living inside the container: a notification handed to the client is
// ordered with respect to the coordinator actions that stop the client.
type ClientDeliver func(pub message.Publish)

// Config configures a broker.
type Config struct {
	ID message.BrokerID
	// Net is the transport the broker sends and receives through.
	Net *transport.Network
	// Neighbors are the broker's overlay neighbors.
	Neighbors []message.BrokerID
	// NextHops maps every other broker to the neighbor toward it; used to
	// forward movement control messages. Computed from the topology via
	// overlay.Topology.NextHops.
	NextHops map[message.BrokerID]message.BrokerID
	// Covering enables the subscription/advertisement covering
	// optimization.
	Covering bool
	// ServiceTime is the simulated processing cost per routing message
	// (publication, subscription, advertisement, or retraction), which is
	// dominated by matching against the routing tables. Movement control
	// messages cost a quarter of it: forwarding them is a routing-table
	// lookup, not a matching pass.
	ServiceTime time.Duration
	// Workers sets the width of the publication dispatch pipeline: with
	// Workers > 1 publications are matched in parallel by a worker pool and
	// re-sequenced before egress, so per-source→per-link FIFO order is
	// preserved. Control and routing-state messages (3PC, subscriptions,
	// advertisements, retractions) always run on the serialized dispatch
	// lane. Values <= 1 keep the fully serial dispatch loop.
	Workers int
	// InboxCapacity bounds the broker inbox. When the inbox is full the
	// transport handler blocks, which propagates backpressure to the
	// sending link goroutines instead of growing the queue without bound.
	// 0 keeps the unbounded inbox.
	InboxCapacity int
	// DataDir, when non-empty, enables durable broker state: routing-table
	// mutations and movement-transaction transitions are written ahead to a
	// log in this directory, checkpointed into snapshots, and recovered by
	// New on restart (including resolution of in-flight movements).
	DataDir string
	// SnapshotEvery overrides the store's checkpoint cadence (WAL records
	// between snapshots); 0 keeps the store default, negative disables
	// automatic checkpoints. Ignored without DataDir.
	SnapshotEvery int
	// RecoveryQueryTimeout bounds how long a restarted broker waits for the
	// target coordinator to answer a MoveQuery about an in-doubt movement
	// before aborting its prepared state locally (the non-blocking
	// termination rule). 0 selects 3s. Ignored without DataDir.
	RecoveryQueryTimeout time.Duration
	// Replication, when non-nil and enabled, attaches a replication agent:
	// coordinator decisions are quorum-replicated to the transaction's
	// preference list and a standby replica finishes in-doubt movements if
	// the coordinator dies without restarting.
	Replication *replication.Config
}

// Broker is one content-based pub/sub broker.
type Broker struct {
	cfg    Config
	tel    *telemetry.BrokerMetrics
	jclock atomic.Pointer[brokerClock]
	// clk is the broker's time source, inherited from the transport so one
	// cluster-wide knob switches real and simulated time. sched is non-nil
	// in scheduled (simulation) mode: the dispatch goroutine is replaced by
	// per-message loop events and every timer lands on the event heap.
	clk   sim.Clock
	sched sim.Scheduler

	srt *matching.SRT
	prt *matching.PRT

	// pipe is the parallel dispatch pipeline; nil when cfg.Workers <= 1.
	// It is created by the dispatch goroutine and used only by it and by
	// the goroutines it owns.
	pipe *pipeline

	mu        sync.Mutex
	inbox     []inboxItem
	cond      *sync.Cond // signalled when the inbox gains a message or stops
	spaceCond *sync.Cond // signalled when the bounded inbox frees a slot
	stopped   bool
	paused    bool
	// busy marks a scheduled-mode dispatch in flight across a service-time
	// delay; deferred counts dispatch events consumed while paused or busy,
	// to be re-posted when the broker frees up. Scheduled mode only.
	busy      bool
	deferred  int
	clients   map[message.NodeID]ClientDeliver
	sentSubs  map[message.SubID]map[message.NodeID]bool
	sentAdvs  map[message.AdvID]map[message.NodeID]bool
	reconfigs map[message.TxID]*reconfigTx
	controlFn ControlSink
	neighbors map[message.BrokerID]bool
	done      chan struct{}

	// Durable state (nil / empty without Config.DataDir).
	store    *store.Store
	storeTel *telemetry.StoreMetrics
	// outcomes are the coordinator decisions this broker has durably
	// recorded; they answer recovery MoveQuery probes.
	outcomes map[message.TxID]string
	// indoubt lists movements recovered in prepared state, queried at Start.
	indoubt []message.MoveHeader
	// queryTimers arm the local-abort fallback per in-doubt movement.
	queryTimers map[message.TxID]sim.Timer

	// repl is the replication agent (nil without Config.Replication).
	repl    *replication.Agent
	replTel *telemetry.ReplicationMetrics
}

// New creates a broker and registers it with the transport. With
// Config.DataDir set it opens (or recovers) the broker's durable store
// first: tables are rebuilt from snapshot + log replay, resolved movement
// transactions are finished, and in-doubt ones are queued for the recovery
// query protocol that Start initiates. Call Start to begin processing and
// Stop to shut down.
func New(cfg Config) (*Broker, error) {
	b := &Broker{
		cfg:       cfg,
		tel:       telemetry.NewBrokerMetrics(),
		srt:       matching.NewSRT(),
		prt:       matching.NewPRT(),
		clients:   make(map[message.NodeID]ClientDeliver),
		sentSubs:  make(map[message.SubID]map[message.NodeID]bool),
		sentAdvs:  make(map[message.AdvID]map[message.NodeID]bool),
		reconfigs: make(map[message.TxID]*reconfigTx),
		neighbors: make(map[message.BrokerID]bool, len(cfg.Neighbors)),
		outcomes:  make(map[message.TxID]string),
		done:      make(chan struct{}),
		clk:       cfg.Net.Clock(),
		sched:     cfg.Net.Scheduler(),
	}
	b.cond = sync.NewCond(&b.mu)
	b.spaceCond = sync.NewCond(&b.mu)
	for _, n := range cfg.Neighbors {
		b.neighbors[n] = true
	}
	var rec *store.Recovery
	if cfg.DataDir != "" {
		b.storeTel = telemetry.NewStoreMetrics()
		st, err := store.Open(cfg.DataDir, store.Options{
			SnapshotEvery: cfg.SnapshotEvery,
			Metrics:       b.storeTel,
		})
		if err != nil {
			return nil, fmt.Errorf("broker %s: %w", cfg.ID, err)
		}
		b.store = st
		rec = st.Recovery()
		b.applyRecovery(rec)
		st.SetSnapshotSource(b.buildSnapshot)
	}
	b.initReplication(rec)
	cfg.Net.Register(cfg.ID.Node(), b.enqueue)
	return b, nil
}

// ID returns the broker's identifier.
func (b *Broker) ID() message.BrokerID { return b.cfg.ID }

// Covering reports whether the covering optimization is enabled.
func (b *Broker) Covering() bool { return b.cfg.Covering }

// SetControlSink installs the coordinator callback for control messages
// addressed to this broker.
func (b *Broker) SetControlSink(fn ControlSink) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.controlFn = fn
}

// Start launches the processing goroutine and, after a recovery that left
// in-doubt movement transactions, begins resolving them by querying their
// target coordinators.
func (b *Broker) Start() {
	if b.sched == nil {
		go b.run()
	}
	b.mu.Lock()
	pending := b.indoubt
	b.indoubt = nil
	b.mu.Unlock()
	for _, hdr := range pending {
		b.queryInDoubt(hdr)
	}
}

// Stop terminates the processing goroutine and waits for it to exit.
// Messages remaining in the inbox are released without processing.
func (b *Broker) Stop() {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.stopped = true
	for _, it := range b.inbox {
		b.cfg.Net.Done(it.env.Msg)
	}
	b.inbox = nil
	b.tel.QueueDepth.Set(0)
	for _, t := range b.queryTimers {
		t.Stop()
	}
	b.queryTimers = nil
	b.cond.Signal()
	b.spaceCond.Broadcast()
	b.mu.Unlock()
	if b.sched != nil {
		// Scheduled mode has no dispatch goroutine to wait out.
		close(b.done)
	}
	<-b.done
	if b.repl != nil {
		b.repl.Stop()
	}
	if b.store != nil {
		// Drain and fsync the write-ahead log after the dispatch goroutine
		// has appended its last record.
		b.store.Close()
	}
}

// Pause freezes message processing without dropping anything: inbound
// messages keep queueing. Models an arbitrarily slow broker (the unbounded
// message-delay regime of Sec. 4.1). Unpause resumes processing.
func (b *Broker) Pause() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.paused = true
}

// Unpause resumes processing after Pause.
func (b *Broker) Unpause() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.paused = false
	b.cond.Signal()
	if b.sched != nil {
		// Re-post the dispatch events consumed while paused.
		for i := 0; i < b.deferred; i++ {
			b.sched.Post(b.dispatchOne)
		}
		b.deferred = 0
	}
}

// AttachClient registers a locally connected client by its
// location-qualified node identity (see message.ClientNode), with the
// callback that receives its notifications.
func (b *Broker) AttachClient(n message.NodeID, deliver func(pub message.Publish)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.clients[n] = deliver
}

// DetachClient removes a locally connected client. Its routing state is not
// retracted; callers retract or move it explicitly.
func (b *Broker) DetachClient(n message.NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.clients, n)
}

// HasClient reports whether the client node is attached here.
func (b *Broker) HasClient(n message.NodeID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.clients[n]
	return ok
}

// QueueLen returns the current inbox length (used by admission control; for
// a full snapshot of the broker's runtime counters use Stats).
func (b *Broker) QueueLen() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.inbox)
}

// Metrics returns the broker's lock-free runtime instruments, for
// registration with a telemetry.Registry.
func (b *Broker) Metrics() *telemetry.BrokerMetrics { return b.tel }

// StoreMetrics returns the durable store's instruments, or nil when the
// broker runs without a data directory.
func (b *Broker) StoreMetrics() *telemetry.StoreMetrics { return b.storeTel }

// DurableStore returns the broker's write-ahead store, or nil when the
// broker runs in-memory only.
func (b *Broker) DurableStore() *store.Store { return b.store }

// PeerLinkState records a circuit-breaker transition on one of this
// broker's overlay links. Safe from any goroutine; the transport's
// link-state callback is the intended caller.
func (b *Broker) PeerLinkState(peer message.NodeID, up bool) {
	if up {
		b.tel.LinksDown.Dec()
	} else {
		b.tel.LinksDown.Inc()
		b.tel.LinkDownEvents.Inc()
	}
}

// Stats is a point-in-time snapshot of one broker's runtime state.
type Stats struct {
	ID                  message.BrokerID
	QueueDepth          int
	QueueHighWater      int64
	BackpressureWaits   int64
	Processed           int64
	DroppedPublications int64
	SRTSize             int
	PRTSize             int
	SendsByKind         map[message.Kind]int64
	TotalSends          int64
	// JournalDropped counts flight-recorder records this broker's network
	// journal overwrote (ring overflow). Non-zero means audits over the
	// journal are working from incomplete evidence — at best LOSSY.
	JournalDropped  uint64
	DispatchLatency telemetry.HistogramSnapshot
	// Stages holds the per-stage latency snapshots (inbox_wait, match, and
	// — with the parallel pipeline — commit_wait and egress_flush).
	Stages map[string]telemetry.HistogramSnapshot
}

// Stats aggregates the broker's runtime gauges and counters into one
// consistent-enough snapshot for operators and tests.
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	depth := len(b.inbox)
	b.mu.Unlock()
	var jnlDropped uint64
	if j := b.journal(); j != nil {
		jnlDropped = j.Dropped()
	}
	return Stats{
		ID:                  b.cfg.ID,
		QueueDepth:          depth,
		QueueHighWater:      b.tel.QueueHighWater.Value(),
		BackpressureWaits:   b.tel.BackpressureWaits.Value(),
		Processed:           b.tel.Processed.Value(),
		DroppedPublications: b.tel.DroppedPublications.Value(),
		SRTSize:             b.srt.Len(),
		PRTSize:             b.prt.Len(),
		SendsByKind:         b.tel.SendsByKind(),
		TotalSends:          b.tel.TotalSends(),
		JournalDropped:      jnlDropped,
		DispatchLatency:     b.tel.DispatchLatency.Snapshot(),
		Stages:              b.tel.Stages.Snapshot(),
	}
}

// SRTSnapshot returns a copy of the advertisement table records.
func (b *Broker) SRTSnapshot() []*matching.Record { return b.srt.All() }

// PRTSnapshot returns a copy of the subscription table records.
func (b *Broker) PRTSnapshot() []*matching.Record { return b.prt.All() }

// inboxItem is one queued envelope with its enqueue time for the
// inbox_wait stage timer (at stays zero while stage timing is disabled, so
// the hot path pays no clock read).
type inboxItem struct {
	env message.Envelope
	at  time.Time
}

// enqueue is the transport handler: it appends to the FIFO inbox. With a
// bounded inbox, a full queue blocks the caller (a transport link goroutine
// or a local injector) until the dispatcher frees a slot — backpressure in
// place of unbounded growth.
func (b *Broker) enqueue(env message.Envelope) {
	it := inboxItem{env: env}
	if b.tel.StageTimingEnabled() {
		it.at = b.clk.Now()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Backpressure blocking would deadlock the single event-loop goroutine,
	// so scheduled mode keeps the inbox unbounded.
	if cap := b.cfg.InboxCapacity; b.sched == nil && cap > 0 && len(b.inbox) >= cap && !b.stopped {
		b.tel.BackpressureWaits.Inc()
		for len(b.inbox) >= cap && !b.stopped {
			b.spaceCond.Wait()
		}
	}
	if b.stopped {
		b.cfg.Net.Done(env.Msg)
		return
	}
	b.inbox = append(b.inbox, it)
	depth := int64(len(b.inbox))
	b.tel.QueueDepth.Set(depth)
	b.tel.QueueHighWater.Observe(depth)
	if b.sched != nil {
		// One dispatch event per queued item. Extra events (re-posted after
		// a pause, say) find an empty inbox and no-op.
		b.sched.Post(b.dispatchOne)
		return
	}
	b.cond.Signal()
}

// dispatchOne is the scheduled-mode dispatcher: one loop event processes one
// inbox item. A per-message service time does not sleep — it re-posts the
// tail of the dispatch as a later event, leaving the loop free, so simulated
// broker congestion behaves like the real dispatch goroutine's.
func (b *Broker) dispatchOne() {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return
	}
	if b.paused || b.busy {
		b.deferred++
		b.mu.Unlock()
		return
	}
	if len(b.inbox) == 0 {
		b.mu.Unlock()
		return
	}
	it := b.inbox[0]
	b.inbox = b.inbox[1:]
	b.tel.QueueDepth.Set(int64(len(b.inbox)))
	var cost time.Duration
	if b.cfg.ServiceTime > 0 {
		cost = b.cfg.ServiceTime
		if it.env.Msg.Kind().IsControl() {
			cost /= 4
		}
		b.busy = true
	}
	b.mu.Unlock()
	if !it.at.IsZero() {
		b.tel.InboxWait.Observe(b.clk.Since(it.at))
	}
	if cost > 0 {
		b.sched.AfterFunc(cost, func() { b.finishDispatch(it.env) })
		return
	}
	b.finishDispatch(it.env)
}

// finishDispatch journals, processes and accounts one envelope, then
// releases any dispatch events deferred while the broker was busy.
func (b *Broker) finishDispatch(env message.Envelope) {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		b.cfg.Net.Done(env.Msg)
		return
	}
	b.mu.Unlock()
	if j := b.journal(); j != nil {
		j.Add(journal.Record{
			Site: string(b.cfg.ID), Cat: journal.CatBroker, Kind: journal.KindDispatch,
			Lamport: b.clock(j).Tick(), Tx: string(env.Msg.Tag()),
			Ref: message.RefOf(env.Msg), From: string(env.From),
			Detail: env.Msg.Kind().String(),
		})
	}
	t0 := b.clk.Now()
	b.process(env)
	b.tel.DispatchLatency.Observe(b.clk.Since(t0))
	b.tel.Processed.Inc()
	b.tel.SRTSize.Set(int64(b.srt.Len()))
	b.tel.PRTSize.Set(int64(b.prt.Len()))
	b.cfg.Net.Done(env.Msg)
	b.mu.Lock()
	b.busy = false
	again := b.deferred
	b.deferred = 0
	b.mu.Unlock()
	for i := 0; i < again; i++ {
		b.sched.Post(b.dispatchOne)
	}
}

func (b *Broker) run() {
	defer close(b.done)
	if b.cfg.Workers > 1 {
		b.pipe = newPipeline(b, b.cfg.Workers)
		defer b.pipe.close()
	}
	for {
		b.mu.Lock()
		for (len(b.inbox) == 0 || b.paused) && !b.stopped {
			b.cond.Wait()
		}
		if b.stopped {
			b.mu.Unlock()
			return
		}
		it := b.inbox[0]
		b.inbox = b.inbox[1:]
		b.tel.QueueDepth.Set(int64(len(b.inbox)))
		b.spaceCond.Signal()
		b.mu.Unlock()
		env := it.env
		if !it.at.IsZero() {
			b.tel.InboxWait.Observe(b.clk.Since(it.at))
		}

		if j := b.journal(); j != nil {
			j.Add(journal.Record{
				Site: string(b.cfg.ID), Cat: journal.CatBroker, Kind: journal.KindDispatch,
				Lamport: b.clock(j).Tick(), Tx: string(env.Msg.Tag()),
				Ref: message.RefOf(env.Msg), From: string(env.From),
				Detail: env.Msg.Kind().String(),
			})
		}

		if b.pipe != nil {
			if m, ok := env.Msg.(message.Publish); ok {
				// Publications take the parallel lane: matching runs in the
				// worker pool and the committer re-establishes inbox order
				// before egress. Accounting for the message completes there.
				b.pipe.submit(env, m)
				continue
			}
			// Everything else is serialized: drain the parallel lane first so
			// routing-table mutations and control traffic never overlap — or
			// overtake — an in-flight publication.
			b.pipe.drain()
		}

		if b.cfg.ServiceTime > 0 {
			cost := b.cfg.ServiceTime
			if env.Msg.Kind().IsControl() {
				cost /= 4
			}
			b.clk.Sleep(cost)
		}
		// Measure the real dispatch cost (matching and forwarding), not the
		// simulated service delay above.
		t0 := b.clk.Now()
		b.process(env)
		b.tel.DispatchLatency.Observe(b.clk.Since(t0))
		b.tel.Processed.Inc()
		b.tel.SRTSize.Set(int64(b.srt.Len()))
		b.tel.PRTSize.Set(int64(b.prt.Len()))
		b.cfg.Net.Done(env.Msg)
	}
}

// process dispatches one message. It runs on the broker goroutine.
func (b *Broker) process(env message.Envelope) {
	switch m := env.Msg.(type) {
	case message.Advertise:
		b.handleAdvertise(m, env.From)
	case message.Unadvertise:
		b.handleUnadvertise(m, env.From)
	case message.Subscribe:
		b.handleSubscribe(m, env.From)
	case message.Unsubscribe:
		b.handleUnsubscribe(m, env.From)
	case message.Publish:
		b.handlePublish(m, env.From)
	case message.MoveApprove:
		b.handleMoveApprove(m, env.From)
	case message.MoveAck:
		b.handleMoveAck(m, env.From)
	case message.MoveAbort:
		b.handleMoveAbort(m, env.From)
	case message.StandbyResolve:
		b.handleStandbyResolve(m, env.From)
	case message.ReplicateDecision, message.ReplicaAck, message.LeaseClaim:
		b.handleReplication(env)
	case message.MoveNegotiate, message.MoveReject, message.MoveState, message.MoveQuery:
		b.forwardOrDeliverControl(env)
	default:
		// Unknown message kinds are dropped.
	}
}

// send transmits a message to a directly connected node (neighbor broker or
// local client).
func (b *Broker) send(to message.NodeID, m message.Message) {
	b.tel.CountSend(m.Kind())
	if err := b.cfg.Net.Send(b.cfg.ID.Node(), to, m); err != nil {
		// A send can only fail when the destination detached concurrently
		// (e.g. a moving client); the message is dropped, which the paper's
		// model treats as a masked transient fault.
		return
	}
}

// sendBatch transmits a run of messages to one directly connected node
// under a single transport enqueue, preserving their order.
func (b *Broker) sendBatch(to message.NodeID, msgs []message.Message) {
	for _, m := range msgs {
		b.tel.CountSend(m.Kind())
	}
	if err := b.cfg.Net.SendBatch(b.cfg.ID.Node(), to, msgs); err != nil {
		// Same masked-transient-fault semantics as send.
		return
	}
}

// isNeighbor reports whether the node is a neighboring broker.
func (b *Broker) isNeighbor(n message.NodeID) bool {
	return b.neighbors[message.BrokerID(n)]
}

// localClient returns the delivery callback for a locally attached client,
// or nil.
func (b *Broker) localClient(n message.NodeID) ClientDeliver {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.clients[n]
}

// nextHopToward returns the neighbor on the path toward the given broker.
func (b *Broker) nextHopToward(dest message.BrokerID) (message.BrokerID, error) {
	if dest == b.cfg.ID {
		return "", fmt.Errorf("broker %s: no next hop toward self", b.cfg.ID)
	}
	hop, ok := b.cfg.NextHops[dest]
	if !ok {
		return "", fmt.Errorf("broker %s: no route toward %s", b.cfg.ID, dest)
	}
	return hop, nil
}

// CanRoute reports whether this broker has a next-hop route toward the
// given broker (itself included).
func (b *Broker) CanRoute(dest message.BrokerID) bool {
	if dest == b.cfg.ID {
		return true
	}
	_, ok := b.cfg.NextHops[dest]
	return ok
}

// SendControl injects a movement control message originated by this
// broker's coordinator. The message always passes through this broker's own
// inbox first, so that any per-hop routing work it requires (preparing,
// committing, or aborting a reconfiguration at the originating broker,
// which is itself on the path) runs uniformly with the other hops; the
// message handler then forwards it toward its destination.
func (b *Broker) SendControl(m message.Message) error {
	b.Inject(b.cfg.ID.Node(), m)
	return nil
}

// Inject enqueues a message into this broker's inbox as if it had arrived
// from the given node. The co-located mobile container uses it to issue and
// retract filters on behalf of the clients it manages without racing the
// lifetime of their access links.
func (b *Broker) Inject(from message.NodeID, m message.Message) {
	b.inject(from, m, 0)
}

// InjectRemote is Inject carrying the sender's Lamport stamp; the TCP
// gateway uses it so causal order survives the process boundary.
func (b *Broker) InjectRemote(from message.NodeID, m message.Message, lamport uint64) {
	b.inject(from, m, lamport)
}

func (b *Broker) inject(from message.NodeID, m message.Message, lamport uint64) {
	// A stopped broker accepts nothing: late callers (a move timer firing
	// after Stop, a gateway read racing teardown) must not leave trace or
	// journal records for a message that can never be processed. enqueue
	// re-checks under the lock, so the window between this check and the
	// append is still accounted correctly.
	b.mu.Lock()
	stopped := b.stopped
	b.mu.Unlock()
	if stopped {
		return
	}
	b.cfg.Net.Registry().MsgEnqueued(m)
	env := message.Envelope{From: from, Msg: m}
	if ts := b.cfg.Net.Tracer(); ts != nil {
		env.Trace = message.TraceOf(m)
		ts.RecordHop(env.Trace, from, b.cfg.ID.Node(), m.Kind(), b.clk.Now())
	}
	if j := b.journal(); j != nil {
		c := b.clock(j)
		if lamport > 0 {
			env.Lamport = c.Merge(lamport)
		} else {
			env.Lamport = c.Tick()
		}
		j.Add(journal.Record{
			Site: string(b.cfg.ID), Cat: journal.CatBroker, Kind: journal.KindInject,
			Lamport: env.Lamport, Tx: string(m.Tag()), Ref: message.RefOf(m),
			From: string(from), Detail: m.Kind().String(),
		})
	}
	b.enqueue(env)
}

// journal returns the network's flight recorder, or nil when disabled.
func (b *Broker) journal() *journal.Journal { return b.cfg.Net.Journal() }

// clock returns this broker's Lamport clock within j, cached so the
// dispatch hot path pays one atomic load instead of a map lookup per
// record (the cache re-resolves if the network's journal is swapped).
func (b *Broker) clock(j *journal.Journal) *journal.Clock {
	if cc := b.jclock.Load(); cc != nil && cc.j == j {
		return cc.c
	}
	cc := &brokerClock{j: j, c: j.ClockOf(string(b.cfg.ID))}
	b.jclock.Store(cc)
	return cc.c
}

// brokerClock pairs a journal with this broker's clock inside it.
type brokerClock struct {
	j *journal.Journal
	c *journal.Clock
}

// forwardOrDeliverControl moves a control message one hop toward its
// destination, or hands it to the local coordinator when it has arrived.
func (b *Broker) forwardOrDeliverControl(env message.Envelope) {
	dest, ok := message.Dest(env.Msg)
	if !ok {
		return
	}
	if dest == b.cfg.ID {
		b.deliverControl(env)
		return
	}
	hop, err := b.nextHopToward(dest)
	if err != nil {
		return
	}
	b.send(hop.Node(), env.Msg)
}

func (b *Broker) deliverControl(env message.Envelope) {
	b.mu.Lock()
	fn := b.controlFn
	b.mu.Unlock()
	if fn != nil {
		fn(env)
	}
}
