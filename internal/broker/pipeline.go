package broker

import (
	"sync"
	"sync/atomic"
	"time"

	"padres/internal/message"
	"padres/internal/telemetry"
)

// The parallel dispatch pipeline splits publication processing into three
// stages while provably preserving the per-source→per-link FIFO order the
// movement protocol's correctness arguments rely on (Sec. 4.4 keeps rc(adv)
// and rc(adv') consistent only under hop-by-hop ordering):
//
//	inbox ──► dispatcher ──► worker pool ──► committer ──► egress queues
//	            (serial)      (parallel        (serial,      (per-dest
//	                           matching)       re-orders)     FIFO)
//
//  1. The dispatcher pops the inbox in FIFO order. For every publication it
//     reserves a commit slot (a result channel pushed onto orderCh) BEFORE
//     handing the work to the pool, so commit order equals inbox order no
//     matter how the workers finish.
//  2. Workers run the expensive part — the simulated service time and the
//     matching pass against the snapshot-indexed routing tables — out of
//     order and in parallel.
//  3. The committer receives completed plans strictly in slot order and
//     appends each plan's outbound actions to per-destination egress
//     queues. Because commit order equals inbox order, the egress order
//     observed by any single destination is a subsequence of the inbox
//     order — exactly what the serial loop produces.
//  4. Each egress queue is drained by one flusher goroutine, which batches
//     consecutive forwards to its destination through transport.SendBatch
//     (one link-lock acquisition per batch) and invokes local client
//     deliveries inline.
//
// Control and routing-state messages never enter the pipeline: the
// dispatcher drains it fully (through egress) and then processes them
// inline, so routing-table mutations, 3PC steps, and reconfigurations are
// totally ordered with respect to every publication — the serialized
// control lane.
type pipeline struct {
	b       *Broker
	workCh  chan pubTicket
	orderCh chan chan *pubPlan

	// commitWait and egressFlush are the pipeline's stage timers,
	// registered on the broker's stage set when the pipeline starts (so a
	// serial broker never advertises stages it cannot observe).
	commitWait  *telemetry.Histogram
	egressFlush *telemetry.Histogram

	outMu       sync.Mutex
	outCond     *sync.Cond
	outstanding int // publications submitted but not fully egressed

	egMu   sync.Mutex
	queues map[message.NodeID]*egressQueue

	wg   sync.WaitGroup // workers + committer
	egWg sync.WaitGroup // egress flushers
}

// pubTicket is one publication handed to the worker pool, with the result
// channel that holds its reserved commit slot.
type pubTicket struct {
	env message.Envelope
	m   message.Publish
	res chan *pubPlan
}

// pubPlan is a matched publication ready for ordered egress.
type pubPlan struct {
	env     message.Envelope
	m       message.Publish
	actions []pubAction
	// matchedAt is when the worker finished matching; the committer derives
	// the in-order commit wait from it (zero when stage timing is off).
	matchedAt time.Time
	// remaining counts egress actions not yet performed; the final
	// decrement completes the message's accounting.
	remaining atomic.Int64
}

// pubAction is one outbound effect of a publication: a forward to a
// neighbor broker (deliver nil) or a delivery to a local client.
type pubAction struct {
	dest      message.NodeID
	deliver   ClientDeliver
	subClient message.ClientID
}

func newPipeline(b *Broker, workers int) *pipeline {
	p := &pipeline{
		b:       b,
		workCh:  make(chan pubTicket, workers),
		orderCh: make(chan chan *pubPlan, 2*workers),
		queues:  make(map[message.NodeID]*egressQueue),
	}
	p.commitWait = b.tel.Stages.Register(telemetry.StageCommitWait)
	p.egressFlush = b.tel.Stages.Register(telemetry.StageEgressFlush)
	b.tel.SetEgressSampler(p.egressDepths)
	p.outCond = sync.NewCond(&p.outMu)
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	p.wg.Add(1)
	go p.committer()
	return p
}

// submit hands one publication to the pipeline. Called only by the
// dispatcher; the orderCh send reserves the commit slot in inbox order
// before the work becomes visible to any worker.
func (p *pipeline) submit(env message.Envelope, m message.Publish) {
	p.outMu.Lock()
	p.outstanding++
	p.outMu.Unlock()
	res := make(chan *pubPlan, 1)
	p.orderCh <- res
	p.workCh <- pubTicket{env: env, m: m, res: res}
}

// drain blocks until every submitted publication has fully left the
// pipeline — matched, committed, and flushed through egress. The
// dispatcher calls it before processing any serialized message, making
// control traffic a total-order barrier.
func (p *pipeline) drain() {
	p.outMu.Lock()
	for p.outstanding > 0 {
		p.outCond.Wait()
	}
	p.outMu.Unlock()
}

// close drains the pipeline and stops all its goroutines. Called by the
// dispatcher on shutdown.
func (p *pipeline) close() {
	p.b.tel.SetEgressSampler(nil)
	p.drain()
	close(p.workCh)
	close(p.orderCh)
	p.wg.Wait()
	p.egMu.Lock()
	for _, q := range p.queues {
		q.stop()
	}
	p.egMu.Unlock()
	p.egWg.Wait()
}

// worker matches publications out of order. The simulated service time
// runs here, so with N workers up to N publications overlap their
// processing cost — the parallelism the serial loop cannot express.
func (p *pipeline) worker() {
	defer p.wg.Done()
	b := p.b
	for t := range p.workCh {
		if b.cfg.ServiceTime > 0 {
			b.clk.Sleep(b.cfg.ServiceTime)
		}
		t0 := b.clk.Now()
		plan := &pubPlan{env: t.env, m: t.m, actions: b.planPublish(t.m, t.env.From)}
		t1 := b.clk.Now()
		b.tel.DispatchLatency.Observe(t1.Sub(t0))
		if b.tel.StageTimingEnabled() {
			plan.matchedAt = t1
		}
		t.res <- plan
	}
}

// committer consumes commit slots strictly in submission (= inbox) order
// and fans each plan's actions out to the per-destination egress queues.
func (p *pipeline) committer() {
	defer p.wg.Done()
	for res := range p.orderCh {
		plan := <-res
		if !plan.matchedAt.IsZero() {
			// Time spent matched but waiting for earlier inbox slots to
			// commit — the price of in-order egress.
			p.commitWait.Observe(p.b.clk.Since(plan.matchedAt))
		}
		if len(plan.actions) == 0 {
			p.finish(plan)
			continue
		}
		plan.remaining.Store(int64(len(plan.actions)))
		for i := range plan.actions {
			p.queueFor(plan.actions[i].dest).push(egressItem{plan: plan, action: &plan.actions[i]})
		}
	}
}

// finish completes one publication's accounting after its last egress
// action (or immediately when it matched nothing).
func (p *pipeline) finish(plan *pubPlan) {
	p.b.cfg.Net.Done(plan.env.Msg)
	p.b.tel.Processed.Inc()
	p.outMu.Lock()
	p.outstanding--
	if p.outstanding == 0 {
		p.outCond.Broadcast()
	}
	p.outMu.Unlock()
}

// queueFor returns the egress queue for a destination, creating its
// flusher on first use.
func (p *pipeline) queueFor(dest message.NodeID) *egressQueue {
	p.egMu.Lock()
	defer p.egMu.Unlock()
	q, ok := p.queues[dest]
	if !ok {
		q = newEgressQueue()
		p.queues[dest] = q
		p.egWg.Add(1)
		go p.flusher(dest, q)
	}
	return q
}

// egressItem is one pending egress action together with the plan it
// belongs to.
type egressItem struct {
	plan   *pubPlan
	action *pubAction
}

// egressQueue is the FIFO buffer in front of one destination.
type egressQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []egressItem
	stopped bool
	// depth mirrors len(items) for the lock-free exposition sampler.
	depth atomic.Int64
}

func newEgressQueue() *egressQueue {
	q := &egressQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *egressQueue) push(it egressItem) {
	q.mu.Lock()
	q.items = append(q.items, it)
	q.depth.Store(int64(len(q.items)))
	q.cond.Signal()
	q.mu.Unlock()
}

func (q *egressQueue) stop() {
	q.mu.Lock()
	q.stopped = true
	q.cond.Signal()
	q.mu.Unlock()
}

// pop takes the whole pending batch, blocking until there is one. ok is
// false when the queue has stopped and holds nothing more.
func (q *egressQueue) pop() (batch []egressItem, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.stopped {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	batch = q.items
	q.items = nil
	q.depth.Store(0)
	return batch, true
}

// egressDepths samples every destination queue's depth; installed as the
// broker metrics' egress sampler and called only at exposition time.
func (p *pipeline) egressDepths() map[string]int {
	p.egMu.Lock()
	defer p.egMu.Unlock()
	out := make(map[string]int, len(p.queues))
	for dest, q := range p.queues {
		out[string(dest)] = int(q.depth.Load())
	}
	return out
}

// flusher drains one destination's egress queue in FIFO order. Runs of
// consecutive forwards are sent as one transport batch; local deliveries
// run inline between them.
func (p *pipeline) flusher(dest message.NodeID, q *egressQueue) {
	defer p.egWg.Done()
	b := p.b
	var msgs []message.Message
	for {
		batch, ok := q.pop()
		if !ok {
			return
		}
		msgs = msgs[:0]
		flushSends := func() {
			if len(msgs) > 0 {
				if b.tel.StageTimingEnabled() {
					t0 := b.clk.Now()
					b.sendBatch(dest, msgs)
					p.egressFlush.Observe(b.clk.Since(t0))
				} else {
					b.sendBatch(dest, msgs)
				}
				msgs = msgs[:0]
			}
		}
		for _, it := range batch {
			if it.action.deliver == nil {
				msgs = append(msgs, it.plan.m)
			} else {
				flushSends()
				b.journalDeliver(it.plan.m, it.action.subClient, dest)
				it.action.deliver(it.plan.m)
			}
		}
		flushSends()
		// Completion strictly after the batch's sends are enqueued on the
		// links, so the registry's caused-before-done invariant holds.
		for _, it := range batch {
			if it.plan.remaining.Add(-1) == 0 {
				p.finish(it.plan)
			}
		}
	}
}
