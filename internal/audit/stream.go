package audit

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"padres/internal/journal"
)

// This file is the online half of the auditor: audit.Stream ingests journal
// tails from one or more sources (an in-process tap, or /journal/stream
// feeds from a fleet of brokers) and verifies the same five properties the
// batch Audit checks — while the system runs, with memory bounded by
// in-flight work rather than run length.
//
// The design exploits the fact that every batch check is order-independent
// given per-source delivery order: phase precedence compares the Lamport
// stamps of first occurrences, delivery and atomicity are count-based, and
// convergence replays per-site tables whose mutations arrive in site order
// within any one source. A global causal merge is therefore unnecessary;
// per-source watermarks (the highest Lamport stamp ingested from each
// source, merged by minimum) only decide *settlement*: once the merged
// watermark has moved SettleHorizon ticks past a transaction's or
// publication's last event, every record that could still change its
// verdict has been seen, so a clean entry is evicted and a dirty one is
// reported. Violating state is pinned until Finalize, which runs the exact
// end-of-run checks and returns a batch-compatible Report.
//
// Loss is first-class: when a source reports dropped records (a tap buffer
// overflow, or a resume gap across a ring overwrite) the affected Lamport
// interval is degraded to LOSSY — absence-based findings (a missing queue
// record, a never-resolved transaction, a missing cleanup remove) are
// suppressed for entities overlapping the interval, while presence-based
// violations (duplicate delivery, double resolution) are still reported.

// CheckStatus is the live verdict of one invariant check.
type CheckStatus string

const (
	// StatusClean means no violation detected and no loss hides one.
	StatusClean CheckStatus = "CLEAN"
	// StatusLossy means no violation detected, but journal loss overlaps
	// the check's evidence so absence-based findings were suppressed.
	StatusLossy CheckStatus = "LOSSY"
	// StatusViolated means at least one confirmed violation.
	StatusViolated CheckStatus = "VIOLATED"
)

// StreamChecks lists the five invariant checks in display order.
var StreamChecks = []string{"delivery", "phase-order", "convergence", "atomicity", "replication"}

// DefaultSettleHorizon is how many Lamport ticks the merged watermark must
// pass an entity's last event before the entity is finalized. It absorbs
// the bounded stamp skew between sites multiplexed onto one source.
const DefaultSettleHorizon = 4096

// StreamOptions configures a streaming auditor.
type StreamOptions struct {
	// SettleHorizon overrides DefaultSettleHorizon (<= 0 keeps the default).
	SettleHorizon uint64
	// OnViolation, when set, is called the first time each violation is
	// detected — during ingest for presence-based violations, at watermark
	// settlement or Finalize otherwise. Called with the stream lock held;
	// keep it fast and do not call back into the Stream.
	OnViolation func(Violation)
}

// LossyInterval records journal loss reported by one source: records with
// stamps at or below UpTo may be missing. Missing is 0 when unknown.
type LossyInterval struct {
	Source  string `json:"source"`
	UpTo    uint64 `json:"up_to"`
	Missing uint64 `json:"missing,omitempty"`
}

// CheckVerdict is the live state of one invariant check.
type CheckVerdict struct {
	Check      string      `json:"check"`
	Status     CheckStatus `json:"status"`
	Violations int         `json:"violations"`
}

// SourceStatus describes one feed.
type SourceStatus struct {
	Name      string `json:"name"`
	Watermark uint64 `json:"watermark"`
	Records   int    `json:"records"`
	Dropped   uint64 `json:"dropped,omitempty"`
	Down      bool   `json:"down,omitempty"`
}

// InFlightTx is one unresolved movement transaction, for live display.
type InFlightTx struct {
	Tx      string `json:"tx"`
	Client  string `json:"client,omitempty"`
	Phase   string `json:"phase"`
	Lamport uint64 `json:"lamport"` // stamp of the newest step observed
}

// StreamStatus is a point-in-time view of the live audit.
type StreamStatus struct {
	Records      int             `json:"records"`
	Watermark    uint64          `json:"watermark"`
	MaxLamport   uint64          `json:"max_lamport"`
	Checks       []CheckVerdict  `json:"checks"`
	InFlightTxs  int             `json:"in_flight_txs"`
	PendingPubs  int             `json:"pending_pubs"`
	StateEntries int             `json:"state_entries"`
	Settled      int             `json:"settled"`
	Lossy        bool            `json:"lossy,omitempty"`
	Intervals    []LossyInterval `json:"lossy_intervals,omitempty"`
	Sources      []SourceStatus  `json:"sources"`
	InFlight     []InFlightTx    `json:"in_flight,omitempty"`
	Violations   []Violation     `json:"violations,omitempty"`
}

// Clean reports whether every check is CLEAN.
func (st StreamStatus) Clean() bool {
	for _, c := range st.Checks {
		if c.Status != StatusClean {
			return false
		}
	}
	return true
}

// WatermarkLag is how far the merged watermark trails the newest stamp.
func (st StreamStatus) WatermarkLag() uint64 {
	if st.MaxLamport < st.Watermark {
		return 0
	}
	return st.MaxLamport - st.Watermark
}

// streamSource is one feed's bookkeeping.
type streamSource struct {
	name      string
	watermark uint64
	records   int
	dropped   uint64
	down      bool
}

// pubKey identifies one (subscriber, publication) delivery obligation.
type pubKey struct{ client, pub string }

// pubState tracks one publication's delivery evidence.
type pubState struct {
	evidence   journal.Record // first stub evidence (deliver/buffer), zero if none
	hasEv      bool
	queued     int
	last       cursor
	dupFlagged bool
}

// netKey addresses one routing net counter of a transaction.
type netKey struct {
	site   string
	table  string
	base   string
	client string
}

// streamTx tracks one movement transaction.
type streamTx struct {
	id        string
	client    string
	hasProto  bool
	firstKind map[string]journal.Record // kind -> first-occurrence step
	sites     map[string]bool           // sites of protocol steps
	committed bool
	aborted   bool
	first     cursor // first protocol step observed
	last      cursor // newest record (protocol or tagged routing)
	lastKind  string // newest protocol step, for display
	lastStamp uint64
	net       map[netKey]int
	cause     journal.Record // first reject/abort/timeout step, zero if none
	hasCause  bool
	doubleRes bool          // both committed and aborted (flagged once)
	takeovers []repTakeover // parsed standby-takeover records
}

// siteKey identifies a client's state machine at one site.
type siteKey struct{ client, site string }

// tombstone remembers a settled entity so stragglers do not resurrect it.
type tombstone struct{ at uint64 }

// streamRun is the per-deployment state.
type streamRun struct {
	run      int64
	config   string
	records  int
	txs      map[string]*streamTx
	pubs     map[pubKey]*pubState
	txTombs  map[string]tombstone
	pubTombs map[pubKey]tombstone
	// crash bookkeeping: last crash/restart per site, by stream order.
	crashAt          map[string]cursor
	restartAt        map[string]cursor
	crashedTxSettled map[string]bool // settled txs that touched a crashed site
	// resume evidence: newest "->started" stamp per (client, site).
	started       map[siteKey]uint64
	cs            *convergenceState
	delivered     int
	settledTx     int
	settledCommit int
	settledAbort  int
	settledPubs   int
}

func newStreamRun(run int64) *streamRun {
	return &streamRun{
		run:              run,
		txs:              make(map[string]*streamTx),
		pubs:             make(map[pubKey]*pubState),
		txTombs:          make(map[string]tombstone),
		pubTombs:         make(map[pubKey]tombstone),
		crashAt:          make(map[string]cursor),
		restartAt:        make(map[string]cursor),
		crashedTxSettled: make(map[string]bool),
		started:          make(map[siteKey]uint64),
		cs:               newConvergenceState(),
	}
}

// Stream is the online auditor. All methods are safe for concurrent use.
type Stream struct {
	mu      sync.Mutex
	opts    StreamOptions
	sources map[string]*streamSource
	runs    map[int64]*streamRun
	runIDs  []int64

	records    int
	watermark  uint64
	maxLamport uint64

	lossyBelow uint64
	intervals  []LossyInterval

	fired map[string]bool // violations already handed to OnViolation
	// confirmed violations surfaced so far (pinned entities re-derive theirs
	// live; this holds only eviction-time emissions — currently none, kept
	// for symmetry with Finalize's authoritative pass).
	sinceSettle      int
	settledEvictions int

	finalized *Report
}

// NewStream returns an online auditor.
func NewStream(opts StreamOptions) *Stream {
	if opts.SettleHorizon == 0 {
		opts.SettleHorizon = DefaultSettleHorizon
	}
	return &Stream{
		opts:    opts,
		sources: make(map[string]*streamSource),
		runs:    make(map[int64]*streamRun),
		fired:   make(map[string]bool),
	}
}

// settleEvery bounds how often the settlement sweep runs: at most once per
// this many ingested records (and only when the watermark advanced).
const settleEvery = 256

func (s *Stream) source(name string) *streamSource {
	src := s.sources[name]
	if src == nil {
		src = &streamSource{name: name}
		s.sources[name] = src
	}
	return src
}

func (s *Stream) runFor(run int64) *streamRun {
	rs := s.runs[run]
	if rs == nil {
		rs = newStreamRun(run)
		s.runs[run] = rs
		s.runIDs = append(s.runIDs, run)
		sort.Slice(s.runIDs, func(i, j int) bool { return s.runIDs[i] < s.runIDs[j] })
	}
	return rs
}

// Ingest feeds records from one source. Records from one source must
// arrive in that source's emission order (a journal tap or /journal/stream
// tail provides this); sources may interleave arbitrarily.
func (s *Stream) Ingest(source string, recs ...journal.Record) {
	if len(recs) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	src := s.source(source)
	src.down = false
	for _, r := range recs {
		if r.Kind == journal.KindTailLoss {
			s.noteLoss(src, r.Lamport, parseMissing(r.Detail))
			continue
		}
		src.records++
		if r.Lamport > src.watermark {
			src.watermark = r.Lamport
		}
		if r.Lamport > s.maxLamport {
			s.maxLamport = r.Lamport
		}
		s.records++
		s.process(r)
	}
	s.advance()
}

// NoteDropped reports a source's cumulative drop counter (tap.Dropped or a
// remote broker's journal drop total). An increase degrades the verdict:
// records with stamps at or below the source's watermark may be missing.
func (s *Stream) NoteDropped(source string, total uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	src := s.source(source)
	if total > src.dropped {
		s.noteLoss(src, src.watermark, total-src.dropped)
		src.dropped = total
	}
}

// SetSourceDown marks a source disconnected (true) or reconnected (false).
// Down sources are excluded from the merged watermark so a dead broker
// does not stall settlement forever.
func (s *Stream) SetSourceDown(source string, down bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.source(source).down = down
	s.advance()
}

func (s *Stream) noteLoss(src *streamSource, upTo, missing uint64) {
	s.intervals = append(s.intervals, LossyInterval{Source: src.name, UpTo: upTo, Missing: missing})
	if upTo > s.lossyBelow {
		s.lossyBelow = upTo
	}
	if upTo == 0 {
		// Loss before any stamp was observed: poison everything so far.
		if s.maxLamport > s.lossyBelow {
			s.lossyBelow = s.maxLamport
		}
		if s.lossyBelow == 0 {
			s.lossyBelow = 1
		}
	}
}

func parseMissing(detail string) uint64 {
	const p = "missing="
	if i := strings.Index(detail, p); i >= 0 {
		if n, err := strconv.ParseUint(detail[i+len(p):], 10, 64); err == nil {
			return n
		}
	}
	return 0
}

// process folds one record into the run state. Called with s.mu held.
func (s *Stream) process(r journal.Record) {
	rs := s.runFor(r.Run)
	rs.records++
	s.sinceSettle++
	c := cursorOf(r)

	switch r.Kind {
	case journal.KindRunConfig:
		if rs.config == "" {
			rs.config = r.Detail
		}
		return
	case journal.KindBrokerCrash:
		if rs.crashAt[r.Site].less(c) {
			rs.crashAt[r.Site] = c
		}
		return
	case journal.KindBrokerRestart:
		if rs.restartAt[r.Site].less(c) {
			rs.restartAt[r.Site] = c
		}
		return
	case journal.KindClientState:
		if strings.HasSuffix(r.Detail, "->started") {
			k := siteKey{r.Client, r.Site}
			if r.Lamport > rs.started[k] {
				rs.started[k] = r.Lamport
			}
		}
		return
	case journal.KindDeliver, journal.KindClientBuffer, journal.KindShellBuffer:
		k := pubKey{r.Client, r.Ref}
		if _, dead := rs.pubTombs[k]; dead {
			return
		}
		p := rs.pub(k)
		// Keep the earliest evidence: batch reports the first kind/site.
		if !p.hasEv || c.less(cursorOf(p.evidence)) {
			p.evidence, p.hasEv = r, true
		}
		if p.last.less(c) {
			p.last = c
		}
		return
	case journal.KindClientDeliver:
		rs.delivered++
		k := pubKey{r.Client, r.Ref}
		if _, dead := rs.pubTombs[k]; dead {
			return
		}
		p := rs.pub(k)
		p.queued++
		if p.last.less(c) {
			p.last = c
		}
		if p.queued > 1 && !p.dupFlagged {
			p.dupFlagged = true
			s.fire(Violation{
				Run: r.Run, Check: "delivery", Client: k.client, Ref: k.pub,
				Detail: fmt.Sprintf("publication entered the application queue %d times", p.queued),
			})
		}
		return
	case journal.KindSRTInsert, journal.KindSRTRemove, journal.KindPRTInsert, journal.KindPRTRemove:
		rs.cs.apply(r)
		if r.Tx != "" {
			if _, dead := rs.txTombs[r.Tx]; !dead {
				tx := rs.tx(r.Tx)
				table := "srt"
				if r.Kind == journal.KindPRTInsert || r.Kind == journal.KindPRTRemove {
					table = "prt"
				}
				d := 1
				if r.Kind == journal.KindSRTRemove || r.Kind == journal.KindPRTRemove {
					d = -1
				}
				nk := netKey{r.Site, table, baseID(r.Ref), r.Client}
				if tx.net == nil {
					tx.net = make(map[netKey]int)
				}
				if tx.net[nk] += d; tx.net[nk] == 0 {
					delete(tx.net, nk)
				}
				if tx.last.less(c) {
					tx.last = c
				}
			}
		}
		return
	case journal.KindClientAttach, journal.KindClientArrive:
		rs.cs.apply(r)
		return
	}

	if r.Cat == journal.CatProtocol && r.Tx != "" {
		if _, dead := rs.txTombs[r.Tx]; dead {
			return
		}
		tx := rs.tx(r.Tx)
		tx.hasProto = true
		if tx.client == "" {
			tx.client = r.Client
		}
		if tx.sites == nil {
			tx.sites = make(map[string]bool)
		}
		tx.sites[r.Site] = true
		if tx.first.zero() || c.less(tx.first) {
			tx.first = c
		}
		if tx.last.less(c) {
			tx.last = c
			tx.lastKind, tx.lastStamp = r.Kind, r.Lamport
		}
		if tx.firstKind == nil {
			tx.firstKind = make(map[string]journal.Record)
		}
		if cur, ok := tx.firstKind[r.Kind]; !ok || c.less(cursorOf(cur)) {
			tx.firstKind[r.Kind] = r
		}
		switch r.Kind {
		case "committed":
			tx.committed = true
		case "aborted":
			tx.aborted = true
		case "standby-takeover":
			tx.takeovers = append(tx.takeovers, parseTakeover(r))
		case "reject-received", "abort-received", "source-timeout":
			if !tx.hasCause || c.less(cursorOf(tx.cause)) {
				tx.cause, tx.hasCause = r, true
			}
		}
		if tx.committed && tx.aborted && !tx.doubleRes {
			tx.doubleRes = true
			s.fire(Violation{
				Run: r.Run, Check: "phase-order", Tx: tx.id, Client: tx.client,
				Detail: "transaction both committed and aborted",
			})
		}
	}
}

func (rs *streamRun) pub(k pubKey) *pubState {
	p := rs.pubs[k]
	if p == nil {
		p = &pubState{}
		rs.pubs[k] = p
	}
	return p
}

func (rs *streamRun) tx(id string) *streamTx {
	tx := rs.txs[id]
	if tx == nil {
		tx = &streamTx{id: id}
		rs.txs[id] = tx
	}
	return tx
}

// crashed returns the set of sites with a journaled crash, and the subset
// never restarted afterwards (by stream-cursor order, matching the batch
// auditor's causal scan).
func (rs *streamRun) crashSets() (crashed, stillDown map[string]bool) {
	crashed = make(map[string]bool, len(rs.crashAt))
	stillDown = make(map[string]bool)
	for site, at := range rs.crashAt {
		crashed[site] = true
		if rs.restartAt[site].less(at) || rs.restartAt[site].zero() {
			stillDown[site] = true
		}
	}
	return crashed, stillDown
}

func (tx *streamTx) touches(sites map[string]bool) bool {
	for s := range tx.sites {
		if sites[s] {
			return true
		}
	}
	return false
}

// fire hands a newly detected violation to OnViolation exactly once.
func (s *Stream) fire(v Violation) {
	key := v.String()
	if s.fired[key] {
		return
	}
	s.fired[key] = true
	if s.opts.OnViolation != nil {
		s.opts.OnViolation(v)
	}
}

// advance recomputes the merged watermark and runs the settlement sweep
// when it moved far enough. Called with s.mu held.
func (s *Stream) advance() {
	wm := uint64(0)
	first := true
	for _, src := range s.sources {
		if src.down {
			continue
		}
		if first || src.watermark < wm {
			wm, first = src.watermark, false
		}
	}
	if first { // all sources down: freeze
		return
	}
	advanced := wm > s.watermark
	if advanced {
		s.watermark = wm
	}
	if advanced && s.sinceSettle >= settleEvery {
		s.sinceSettle = 0
		s.settle()
	}
}

// settle evicts every entity whose horizon has passed and whose verdict is
// clean; dirty entities stay pinned (their violations fire once here) so
// Finalize can report them with full context. Called with s.mu held.
func (s *Stream) settle() {
	h := s.opts.SettleHorizon
	wm := s.watermark
	for _, rs := range s.runs {
		crashed, _ := rs.crashSets()
		for id, tx := range rs.txs {
			if !tx.hasProto || wm <= tx.last.lamport+h {
				continue
			}
			crashTx := tx.touches(crashed)
			vs := s.txViolations(rs, tx, crashed, crashTx)
			if len(vs) > 0 {
				for _, v := range vs {
					s.fire(v)
				}
				continue // pinned until Finalize
			}
			if !tx.committed && !tx.aborted {
				continue // unresolved: hold (crash-interrupted resolves at Finalize)
			}
			if rs.cs.liveShadows(id) {
				continue // prepared configuration still live somewhere
			}
			// Clean and out of the horizon: settle.
			rs.settledTx++
			if tx.committed {
				rs.settledCommit++
			} else {
				rs.settledAbort++
			}
			if crashTx {
				rs.crashedTxSettled[id] = true
			}
			rs.txTombs[id] = tombstone{at: wm}
			rs.cs.dropTx(id, tx.client)
			delete(rs.txs, id)
			s.settledEvictions++
		}
		for k, p := range rs.pubs {
			if wm <= p.last.lamport+h {
				continue
			}
			if vs := s.pubViolations(rs, k, p, crashed); len(vs) > 0 {
				for _, v := range vs {
					s.fire(v)
				}
				continue
			}
			if p.queued == 0 {
				continue // evidence without a queue entry: hold for the record or the crash excuse
			}
			rs.settledPubs++
			rs.pubTombs[k] = tombstone{at: wm}
			delete(rs.pubs, k)
			s.settledEvictions++
		}
		// Sweep expired tombstones: stragglers this old no longer arrive.
		for id, t := range rs.txTombs {
			if wm > t.at+h {
				delete(rs.txTombs, id)
			}
		}
		for k, t := range rs.pubTombs {
			if wm > t.at+h {
				delete(rs.pubTombs, k)
			}
		}
	}
}

// suppressed reports whether an absence-based finding for an entity whose
// evidence begins at first must be degraded to LOSSY instead of reported.
func (s *Stream) suppressed(first uint64) bool {
	return s.lossyBelow > 0 && first <= s.lossyBelow
}

// txViolations derives the current phase-order and atomicity violations of
// one transaction, mirroring checkPhaseOrder/checkAtomicity. Callers gate
// on the watermark horizon before evaluating, so absence-based findings
// are as definitive as they get short of Finalize. Loss suppression
// degrades absence-based findings for entities overlapping a lossy
// interval.
func (s *Stream) txViolations(rs *streamRun, tx *streamTx, crashed map[string]bool, crashTx bool) []Violation {
	var out []Violation
	addPhase := func(detail string) {
		out = append(out, Violation{Run: rs.run, Check: "phase-order", Tx: tx.id, Client: tx.client, Detail: detail})
	}
	lossHidden := s.suppressed(tx.first.lamport)
	blocking := strings.Contains(rs.config, "timeout=0s")

	if tx.committed && tx.aborted {
		addPhase("transaction both committed and aborted")
	}
	if !tx.committed && !tx.aborted && !crashTx && !lossHidden {
		addPhase("transaction never resolved (no committed or aborted step)")
	}
	first := func(kind string) (journal.Record, bool) {
		r, ok := tx.firstKind[kind]
		return r, ok
	}
	for _, pair := range phasePrecedence {
		a, okA := first(pair[0])
		b, okB := first(pair[1])
		if !okA || !okB {
			continue
		}
		if cursorOf(b).less(cursorOf(a)) {
			addPhase(fmt.Sprintf("%s observed before %s (lamport %d vs %d)",
				pair[1], pair[0], b.Lamport, a.Lamport))
		}
	}
	if tx.committed && !lossHidden {
		if _, ok := first("ack-received"); !ok {
			addPhase("committed without receiving acknowledgement (message 5)")
		}
	}
	if tx.aborted && !tx.committed && !lossHidden {
		_, r1 := first("reject-received")
		_, r2 := first("abort-received")
		_, r3 := first("source-timeout")
		_, r4 := first("abort-sent")
		if !r1 && !r2 && !r3 && !r4 {
			addPhase("aborted without a rejection, abort, or timeout cause")
		}
	}
	if blocking {
		for _, k := range []string{"source-timeout", "target-timeout"} {
			if _, ok := first(k); ok {
				addPhase("blocking engine recorded a " + k)
			}
		}
	}

	// Atomicity: only aborted transactions must roll back.
	if tx.aborted && !tx.committed {
		if !crashTx && !lossHidden {
			for k, n := range tx.net {
				if n == 0 || crashed[k.site] || k.client != tx.client {
					continue
				}
				verb := "left behind"
				if n < 0 {
					verb = "destroyed"
				}
				out = append(out, Violation{
					Run: rs.run, Check: "atomicity", Tx: tx.id, Client: tx.client, Site: k.site, Ref: k.base,
					Detail: fmt.Sprintf("aborted transaction %s %s state in the %s (insert-remove net %+d)",
						verb, k.base, strings.ToUpper(k.table), n),
				})
			}
		}
		if tx.hasCause && !crashed[tx.cause.Site] && !lossHidden {
			if rs.started[siteKey{tx.client, tx.cause.Site}] <= tx.cause.Lamport {
				out = append(out, Violation{
					Run: rs.run, Check: "atomicity", Tx: tx.id, Client: tx.client,
					Detail: "client did not return to the started state after the abort",
				})
			}
		}
	}

	// Replication safety is presence-based — every finding compares records
	// that exist — so neither journal loss nor a crash excuses it. The shared
	// derivation keeps the stream's findings identical to checkReplication's.
	out = append(out, replicationViolations(rs.run, tx.id, tx.client, tx.takeovers, tx.committed, tx.aborted)...)
	return out
}

// pubViolations derives the delivery violations of one publication,
// mirroring checkDelivery.
func (s *Stream) pubViolations(rs *streamRun, k pubKey, p *pubState, crashed map[string]bool) []Violation {
	var out []Violation
	if p.queued > 1 {
		out = append(out, Violation{
			Run: rs.run, Check: "delivery", Client: k.client, Ref: k.pub,
			Detail: fmt.Sprintf("publication entered the application queue %d times", p.queued),
		})
	}
	if p.hasEv && p.queued == 0 && !crashed[p.evidence.Site] && !s.suppressed(p.last.lamport) {
		out = append(out, Violation{
			Run: rs.run, Check: "delivery", Client: k.client, Ref: k.pub,
			Detail: fmt.Sprintf("publication reached the stub (%s) but never entered the application queue", p.evidence.Kind),
		})
	}
	return out
}

// Status returns a point-in-time view: per-check verdicts, watermark
// position, in-flight entities, and state size.
func (s *Stream) Status() StreamStatus {
	s.mu.Lock()
	defer s.mu.Unlock()

	st := StreamStatus{
		Records:    s.records,
		Watermark:  s.watermark,
		MaxLamport: s.maxLamport,
		Lossy:      s.lossyBelow > 0,
		Intervals:  append([]LossyInterval(nil), s.intervals...),
		Settled:    s.settledEvictions,
	}
	for _, name := range sortedSourceNames(s.sources) {
		src := s.sources[name]
		st.Sources = append(st.Sources, SourceStatus{
			Name: src.name, Watermark: src.watermark, Records: src.records,
			Dropped: src.dropped, Down: src.down,
		})
	}

	counts := make(map[string]int)
	h := s.opts.SettleHorizon
	var inflight []InFlightTx
	for _, runID := range s.runIDs {
		rs := s.runs[runID]
		crashed, stillDown := rs.crashSets()
		st.StateEntries += len(rs.txs) + len(rs.pubs) + len(rs.txTombs) + len(rs.pubTombs) + rs.cs.entries()
		st.PendingPubs += len(rs.pubs)
		anyUnresolved := false
		for _, tx := range rs.txs {
			if !tx.hasProto {
				continue
			}
			st.InFlightTxs++
			if !tx.committed && !tx.aborted {
				anyUnresolved = true
				inflight = append(inflight, InFlightTx{
					Tx: tx.id, Client: tx.client, Phase: tx.lastKind, Lamport: tx.lastStamp,
				})
			}
			if s.watermark <= tx.last.lamport+h {
				// Inside the horizon: only presence-based findings count.
				if tx.doubleRes {
					counts["phase-order"]++
					st.Violations = append(st.Violations, Violation{
						Run: rs.run, Check: "phase-order", Tx: tx.id, Client: tx.client,
						Detail: "transaction both committed and aborted",
					})
				}
				continue
			}
			crashTx := tx.touches(crashed)
			for _, v := range s.txViolations(rs, tx, crashed, crashTx) {
				counts[v.Check]++
				st.Violations = append(st.Violations, v)
			}
		}
		for k, p := range rs.pubs {
			if s.watermark <= p.last.lamport+h {
				if p.queued > 1 {
					counts["delivery"]++
					st.Violations = append(st.Violations, Violation{
						Run: rs.run, Check: "delivery", Client: k.client, Ref: k.pub,
						Detail: fmt.Sprintf("publication entered the application queue %d times", p.queued),
					})
				}
				continue
			}
			for _, v := range s.pubViolations(rs, k, p, crashed) {
				counts[v.Check]++
				st.Violations = append(st.Violations, v)
			}
		}
		// Convergence is a quiescent property: inspect only once every
		// transaction resolved and the tables stopped moving.
		if !anyUnresolved && s.watermark > rs.cs.lastMut.lamport+h {
			if s.lossyBelow > 0 {
				// absence-based: LOSSY, not violated
			} else {
				crashedTx := s.crashedTxSet(rs, crashed)
				for _, v := range rs.cs.violations(rs.run, crashed, stillDown, crashedTx) {
					counts["convergence"]++
					st.Violations = append(st.Violations, v)
				}
			}
		}
	}
	sort.Slice(inflight, func(i, j int) bool { return inflight[i].Lamport > inflight[j].Lamport })
	if len(inflight) > 16 {
		inflight = inflight[:16]
	}
	st.InFlight = inflight
	sortViolations(st.Violations)
	if len(st.Violations) > 64 {
		st.Violations = st.Violations[:64]
	}

	for _, check := range StreamChecks {
		v := CheckVerdict{Check: check, Status: StatusClean, Violations: counts[check]}
		switch {
		case counts[check] > 0:
			v.Status = StatusViolated
		case s.lossyBelow > 0:
			v.Status = StatusLossy
		}
		st.Checks = append(st.Checks, v)
	}
	return st
}

// crashedTxSet merges the in-flight and settled transactions that touched
// a crashed site. Called with s.mu held.
func (s *Stream) crashedTxSet(rs *streamRun, crashed map[string]bool) map[string]bool {
	out := make(map[string]bool, len(rs.crashedTxSettled))
	for id := range rs.crashedTxSettled {
		out[id] = true
	}
	for id, tx := range rs.txs {
		if tx.touches(crashed) {
			out[id] = true
		}
	}
	return out
}

// Finalize runs the end-of-run checks over everything still in flight and
// returns a batch-compatible Report. On a loss-free stream fed every
// record, the verdict and violation multiset equal batch Audit's. Further
// Ingest calls after Finalize are accepted but the returned report is
// computed once.
func (s *Stream) Finalize() *Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finalized != nil {
		return s.finalized
	}
	rep := &Report{Records: s.records}
	for _, runID := range s.runIDs {
		rs := s.runs[runID]
		rr := RunReport{Run: rs.run, Config: rs.config, Records: rs.records}
		crashed, stillDown := rs.crashSets()
		for site := range crashed {
			rr.CrashedSites = append(rr.CrashedSites, site)
			if !stillDown[site] {
				rr.RestartedSites = append(rr.RestartedSites, site)
			}
		}
		sort.Strings(rr.CrashedSites)
		sort.Strings(rr.RestartedSites)

		crashedTx := s.crashedTxSet(rs, crashed)
		rr.Txs = rs.settledTx
		rr.Committed = rs.settledCommit
		rr.Aborted = rs.settledAbort
		for _, tx := range rs.txs {
			if !tx.hasProto {
				continue
			}
			rr.Txs++
			switch {
			case tx.committed:
				rr.Committed++
			case tx.aborted:
				rr.Aborted++
			case crashedTx[tx.id]:
				rr.CrashInterrupted++
			default:
				rr.Unresolved++
			}
			vs := s.txViolations(rs, tx, crashed, crashedTx[tx.id])
			for _, v := range vs {
				s.fire(v)
			}
			rr.Violations = append(rr.Violations, vs...)
		}
		rr.Delivered = rs.delivered
		for k, p := range rs.pubs {
			vs := s.pubViolations(rs, k, p, crashed)
			for _, v := range vs {
				s.fire(v)
			}
			rr.Violations = append(rr.Violations, vs...)
		}
		if s.lossyBelow == 0 {
			vs := rs.cs.violations(rs.run, crashed, stillDown, crashedTx)
			for _, v := range vs {
				s.fire(v)
			}
			rr.Violations = append(rr.Violations, vs...)
		}
		sortViolations(rr.Violations)
		rep.Runs = append(rep.Runs, rr)
	}
	s.finalized = rep
	return rep
}

func sortedSourceNames(m map[string]*streamSource) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
