package audit_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"padres/internal/audit"
	"padres/internal/client"
	"padres/internal/cluster"
	"padres/internal/core"
	"padres/internal/journal"
	"padres/internal/message"
	"padres/internal/predicate"
)

// runParallelDispatchWorkload drives a journaled cluster whose brokers run
// the parallel dispatch pipeline: several publishers flood concurrently, a
// subscriber moves mid-stream, and the run settles. The journal it leaves
// behind is what the auditor replays.
func runParallelDispatchWorkload(t *testing.T, j *journal.Journal, workers int) int {
	t.Helper()
	c, err := cluster.New(cluster.Options{
		Protocol: core.ProtocolReconfig,
		Workers:  workers,
		Journal:  j,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	const publishers = 4
	const perPublisher = 25
	pubs := make([]*client.Client, publishers)
	for i := range pubs {
		cl, err := c.NewClient(message.ClientID("pub"+string(rune('a'+i))), "b1")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Advertise(predicate.MustParse("[x,>,0]")); err != nil {
			t.Fatal(err)
		}
		pubs[i] = cl
	}
	sub, err := c.NewClient("sub", "b14")
	if err != nil {
		t.Fatal(err)
	}
	settle := func() {
		t.Helper()
		if err := c.SettleFor(30 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	settle()
	if _, err := sub.Subscribe(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	settle()

	flood := func(base int) {
		t.Helper()
		var wg sync.WaitGroup
		for _, p := range pubs {
			wg.Add(1)
			go func(p *client.Client) {
				defer wg.Done()
				for k := 0; k < perPublisher; k++ {
					if _, err := p.Publish(predicate.Event{"x": predicate.Number(float64(base + k))}); err != nil {
						t.Error(err)
						return
					}
				}
			}(p)
		}
		wg.Wait()
		settle()
	}

	flood(1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := sub.Move(ctx, "b7"); err != nil {
		cancel()
		t.Fatalf("move: %v", err)
	}
	cancel()
	settle()
	flood(1000)

	want := 2 * publishers * perPublisher
	if got := sub.QueueLen(); got != want {
		t.Fatalf("subscriber queued %d publications, want %d", got, want)
	}
	return want
}

// TestAuditParallelDispatch is the acceptance gate for the dispatch
// pipeline: a run with Workers=8 must replay through the auditor with zero
// violations — exactly-once delivery, 3PC phase order, routing-state
// convergence, and abort atomicity all intact under parallel matching —
// and Workers=1 on the same workload pins the serial baseline.
func TestAuditParallelDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("live-cluster audit run")
	}
	j := journal.New(0)
	runParallelDispatchWorkload(t, j, 1)
	runParallelDispatchWorkload(t, j, 8)

	rep := audit.Audit(j.Snapshot())
	if len(rep.Runs) != 2 {
		t.Fatalf("runs audited = %d, want 2", len(rep.Runs))
	}
	if !rep.Clean() {
		var sb strings.Builder
		rep.Write(&sb)
		t.Fatalf("parallel dispatch run flagged:\n%s", sb.String())
	}
	for _, run := range rep.Runs {
		if run.Committed < 1 {
			t.Errorf("run %d committed %d movements, want >= 1", run.Run, run.Committed)
		}
		if run.Delivered < 200 {
			t.Errorf("run %d delivered %d publications, want >= 200", run.Run, run.Delivered)
		}
	}
}
