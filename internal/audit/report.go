package audit

import (
	"fmt"
	"io"

	"padres/internal/journal"
)

// Write renders the report as the auditor's verdict: per-run summaries,
// every violation, and a final PASS/FAIL line.
func (r *Report) Write(w io.Writer) {
	fmt.Fprintf(w, "audited %d records across %d run(s)\n", r.Records, len(r.Runs))
	for _, run := range r.Runs {
		fmt.Fprintf(w, "\nrun %d: %s\n", run.Run, run.Config)
		fmt.Fprintf(w, "  records=%d transactions=%d committed=%d aborted=%d unresolved=%d deliveries=%d\n",
			run.Records, run.Txs, run.Committed, run.Aborted, run.Unresolved, run.Delivered)
		if run.Clean() {
			fmt.Fprintf(w, "  clean: exactly-once delivery, 3PC phase order, routing convergence, abort atomicity all hold\n")
			continue
		}
		fmt.Fprintf(w, "  VIOLATIONS (%d):\n", len(run.Violations))
		for _, v := range run.Violations {
			fmt.Fprintf(w, "    %s\n", v)
		}
	}
	fmt.Fprintln(w)
	if r.Clean() {
		fmt.Fprintln(w, "PASS: all mobility properties verified")
	} else {
		fmt.Fprintf(w, "FAIL: %d violation(s)\n", len(r.Violations()))
	}
}

// WriteTimeline renders one transaction's causal timeline, one record per
// line in causal order, for debugging a flagged movement.
func WriteTimeline(w io.Writer, recs []journal.Record, run int64, tx string) {
	tl := Timeline(recs, run, tx)
	fmt.Fprintf(w, "timeline of tx %s in run %d (%d records):\n", tx, run, len(tl))
	for _, r := range tl {
		fmt.Fprintf(w, "  %s\n", r)
	}
}
