package audit

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"padres/internal/journal"
)

// DiffReports compares two reports of the same records — typically the
// batch auditor's against the streaming auditor's Finalize — and returns a
// description of the first difference, or "" when they agree on verdict,
// per-run counts, crash sets, and the exact violation multiset.
func DiffReports(a, b *Report) string {
	if a.Clean() != b.Clean() {
		return fmt.Sprintf("verdict: %v vs %v", a.Clean(), b.Clean())
	}
	if a.Records != b.Records {
		return fmt.Sprintf("records: %d vs %d", a.Records, b.Records)
	}
	if len(a.Runs) != len(b.Runs) {
		return fmt.Sprintf("runs: %d vs %d", len(a.Runs), len(b.Runs))
	}
	for i := range a.Runs {
		ra, rb := a.Runs[i], b.Runs[i]
		if ra.Run != rb.Run || ra.Txs != rb.Txs || ra.Committed != rb.Committed ||
			ra.Aborted != rb.Aborted || ra.Unresolved != rb.Unresolved ||
			ra.CrashInterrupted != rb.CrashInterrupted || ra.Delivered != rb.Delivered ||
			ra.Records != rb.Records {
			return fmt.Sprintf("run %d counts: txs=%d/%d committed=%d/%d aborted=%d/%d unresolved=%d/%d crash-interrupted=%d/%d delivered=%d/%d records=%d/%d",
				ra.Run, ra.Txs, rb.Txs, ra.Committed, rb.Committed, ra.Aborted, rb.Aborted,
				ra.Unresolved, rb.Unresolved, ra.CrashInterrupted, rb.CrashInterrupted,
				ra.Delivered, rb.Delivered, ra.Records, rb.Records)
		}
		if strings.Join(ra.CrashedSites, ",") != strings.Join(rb.CrashedSites, ",") ||
			strings.Join(ra.RestartedSites, ",") != strings.Join(rb.RestartedSites, ",") {
			return fmt.Sprintf("run %d crash sets: %v/%v vs %v/%v",
				ra.Run, ra.CrashedSites, ra.RestartedSites, rb.CrashedSites, rb.RestartedSites)
		}
		va, vb := violationKeys(ra.Violations), violationKeys(rb.Violations)
		if strings.Join(va, "\n") != strings.Join(vb, "\n") {
			return fmt.Sprintf("run %d violation multisets:\n--- a:\n%s\n--- b:\n%s",
				ra.Run, strings.Join(va, "\n"), strings.Join(vb, "\n"))
		}
	}
	return ""
}

// violationKeys renders violations as sorted comparison keys.
func violationKeys(vs []Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	sort.Strings(out)
	return out
}

// Write renders the report as the auditor's verdict: per-run summaries,
// every violation, and a final PASS/FAIL line.
func (r *Report) Write(w io.Writer) {
	fmt.Fprintf(w, "audited %d records across %d run(s)\n", r.Records, len(r.Runs))
	for _, run := range r.Runs {
		fmt.Fprintf(w, "\nrun %d: %s\n", run.Run, run.Config)
		fmt.Fprintf(w, "  records=%d transactions=%d committed=%d aborted=%d unresolved=%d deliveries=%d\n",
			run.Records, run.Txs, run.Committed, run.Aborted, run.Unresolved, run.Delivered)
		if run.Clean() {
			fmt.Fprintf(w, "  clean: exactly-once delivery, 3PC phase order, routing convergence, abort atomicity all hold\n")
			continue
		}
		fmt.Fprintf(w, "  VIOLATIONS (%d):\n", len(run.Violations))
		for _, v := range run.Violations {
			fmt.Fprintf(w, "    %s\n", v)
		}
	}
	fmt.Fprintln(w)
	if r.Clean() {
		fmt.Fprintln(w, "PASS: all mobility properties verified")
	} else {
		fmt.Fprintf(w, "FAIL: %d violation(s)\n", len(r.Violations()))
	}
}

// WriteTimeline renders one transaction's causal timeline, one record per
// line in causal order, for debugging a flagged movement.
func WriteTimeline(w io.Writer, recs []journal.Record, run int64, tx string) {
	tl := Timeline(recs, run, tx)
	fmt.Fprintf(w, "timeline of tx %s in run %d (%d records):\n", tx, run, len(tl))
	for _, r := range tl {
		fmt.Fprintf(w, "  %s\n", r)
	}
}
