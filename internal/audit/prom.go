package audit

import (
	"padres/internal/telemetry"
)

// PromFamilies contributes the live auditor's padres_audit_* metric
// families to a telemetry exposition. Register it with
// telemetry.Registry.AddFamilies(stream.PromFamilies) so the invariants
// become scrapeable alongside the broker runtime metrics:
//
//	padres_audit_records_total          records ingested across all sources
//	padres_audit_violations_total       confirmed violations, per check
//	padres_audit_check_status           0 clean, 1 lossy, 2 violated, per check
//	padres_audit_watermark              merged Lamport watermark
//	padres_audit_watermark_lag          newest stamp minus merged watermark
//	padres_audit_inflight_txs           unresolved or unsettled transactions
//	padres_audit_pending_pubs           publications awaiting settlement
//	padres_audit_state_entries          total tracked state (memory bound)
//	padres_audit_settled_total          entities settled and evicted
//	padres_audit_lossy_intervals_total  loss reports ingested
//	padres_audit_source_watermark       per-source high stamp
//	padres_audit_source_dropped_total   per-source records lost before ingest
func (s *Stream) PromFamilies(pb *telemetry.PromBuilder) {
	st := s.Status()
	pb.Counter("padres_audit_records_total",
		"Journal records ingested by the live auditor.", nil, int64(st.Records))
	for _, c := range st.Checks {
		labels := []telemetry.Label{{Name: "check", Value: c.Check}}
		pb.Counter("padres_audit_violations_total",
			"Confirmed invariant violations detected by the live auditor.",
			labels, int64(c.Violations))
		var code int64
		switch c.Status {
		case StatusLossy:
			code = 1
		case StatusViolated:
			code = 2
		}
		pb.Gauge("padres_audit_check_status",
			"Live verdict per invariant check: 0 clean, 1 lossy, 2 violated.",
			labels, code)
	}
	pb.Gauge("padres_audit_watermark",
		"Merged Lamport watermark: every record at or below this stamp was ingested from every live source.",
		nil, int64(st.Watermark))
	pb.Gauge("padres_audit_watermark_lag",
		"Distance between the newest ingested stamp and the merged watermark.",
		nil, int64(st.WatermarkLag()))
	pb.Gauge("padres_audit_inflight_txs",
		"Movement transactions tracked by the live auditor (unresolved or not yet settled).",
		nil, int64(st.InFlightTxs))
	pb.Gauge("padres_audit_pending_pubs",
		"Publications tracked by the live auditor awaiting settlement.",
		nil, int64(st.PendingPubs))
	pb.Gauge("padres_audit_state_entries",
		"Total state entries held by the live auditor (bounded by in-flight work).",
		nil, int64(st.StateEntries))
	pb.Counter("padres_audit_settled_total",
		"Entities the live auditor settled clean and evicted.", nil, int64(st.Settled))
	pb.Counter("padres_audit_lossy_intervals_total",
		"Journal loss reports that degraded audit intervals to LOSSY.",
		nil, int64(len(st.Intervals)))
	for _, src := range st.Sources {
		labels := []telemetry.Label{{Name: "source", Value: src.Name}}
		pb.Gauge("padres_audit_source_watermark",
			"Highest Lamport stamp ingested per source.", labels, int64(src.Watermark))
		pb.Counter("padres_audit_source_dropped_total",
			"Records each source reported lost before ingest.", labels, int64(src.Dropped))
	}
}
