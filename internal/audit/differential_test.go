package audit_test

import (
	"math/rand"
	"sort"
	"testing"

	"padres/internal/audit"
	"padres/internal/core"
	"padres/internal/journal"
)

// diffReports compares a batch report against a streaming Finalize report:
// same verdict, same per-run counts, same violation multiset. Returns "" on
// equality.
func diffReports(batch, stream *audit.Report) string {
	return audit.DiffReports(batch, stream)
}

// demuxBySite splits a journal snapshot into per-site record streams,
// preserving each site's emission order — exactly what per-broker
// /journal/stream tails deliver.
func demuxBySite(recs []journal.Record) map[string][]journal.Record {
	out := make(map[string][]journal.Record)
	for _, r := range recs {
		out[r.Site] = append(out[r.Site], r)
	}
	return out
}

// feedShuffled ingests the per-site streams in chunks, interleaving chunk
// delivery across sites in a seeded random order while preserving each
// site's internal order — the adversarial arrival schedule a fleet of
// independently-paced broker tails produces.
func feedShuffled(s *audit.Stream, bySite map[string][]journal.Record, chunk int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	sites := make([]string, 0, len(bySite))
	for site := range bySite {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	next := make(map[string]int, len(sites))
	for len(sites) > 0 {
		i := rng.Intn(len(sites))
		site := sites[i]
		recs := bySite[site]
		lo := next[site]
		hi := lo + chunk
		if hi > len(recs) {
			hi = len(recs)
		}
		s.Ingest(site, recs[lo:hi]...)
		if next[site] = hi; hi == len(recs) {
			sites = append(sites[:i], sites[i+1:]...)
		}
	}
}

// TestStreamMatchesBatchOnWorkload is the differential gate: a real
// movement workload's journal, fed to the streaming auditor as shuffled
// per-broker chunks, must finalize to exactly the batch auditor's report —
// same verdict, same counts, same violation multiset.
func TestStreamMatchesBatchOnWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("live-cluster audit run")
	}
	j := journal.New(0)
	runMovementWorkload(t, j, core.ProtocolReconfig, false, 0)
	runMovementWorkload(t, j, core.ProtocolEndToEnd, true, 0)
	recs := j.Snapshot()
	batch := audit.Audit(append([]journal.Record(nil), recs...))
	if len(batch.Runs) != 2 {
		t.Fatalf("batch audited %d runs, want 2", len(batch.Runs))
	}

	// In order, single source: the simplest streaming arrangement.
	whole := audit.NewStream(audit.StreamOptions{})
	whole.Ingest("journal", recs...)
	if diff := diffReports(batch, whole.Finalize()); diff != "" {
		t.Fatalf("in-order stream diverged from batch: %s", diff)
	}

	// Adversarial: per-site sources, chunked, seeded-random interleavings.
	bySite := demuxBySite(recs)
	if len(bySite) < 4 {
		t.Fatalf("workload touched only %d sites, want a real fleet", len(bySite))
	}
	for _, seed := range []int64{1, 7, 42} {
		s := audit.NewStream(audit.StreamOptions{})
		feedShuffled(s, bySite, 25, seed)
		if diff := diffReports(batch, s.Finalize()); diff != "" {
			t.Fatalf("shuffled stream (seed %d) diverged from batch: %s", seed, diff)
		}
		st := s.Status()
		if st.Records != len(recs) {
			t.Fatalf("seed %d: stream ingested %d records, want %d", seed, st.Records, len(recs))
		}
	}
}

// TestStreamLiveStatusOnWorkload checks the live view, not just Finalize:
// once a clean workload's records are all ingested, every check reads CLEAN
// and the in-flight table drains to the settled/committed transactions.
func TestStreamLiveStatusOnWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("live-cluster audit run")
	}
	j := journal.New(0)
	runMovementWorkload(t, j, core.ProtocolReconfig, false, 0)
	recs := j.Snapshot()

	s := audit.NewStream(audit.StreamOptions{
		OnViolation: func(v audit.Violation) {
			t.Errorf("live violation on clean workload: %s", v)
		},
	})
	for site, chunk := range demuxBySite(recs) {
		s.Ingest(site, chunk...)
	}
	st := s.Status()
	if !st.Clean() {
		t.Fatalf("live status not clean: %+v", st.Checks)
	}
	if st.Lossy {
		t.Fatal("lossless feed marked lossy")
	}
	if st.Watermark == 0 || st.MaxLamport < st.Watermark {
		t.Fatalf("watermark bookkeeping broken: wm=%d max=%d", st.Watermark, st.MaxLamport)
	}
	if len(st.Sources) != len(demuxBySite(recs)) {
		t.Fatalf("sources tracked = %d, want %d", len(st.Sources), len(demuxBySite(recs)))
	}
	if rep := s.Finalize(); !rep.Clean() {
		t.Fatalf("finalize flagged clean workload: %v", rep.Violations())
	}
}
