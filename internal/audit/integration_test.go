package audit_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"padres/internal/audit"
	"padres/internal/cluster"
	"padres/internal/core"
	"padres/internal/journal"
	"padres/internal/message"
	"padres/internal/predicate"
)

// runMovementWorkload deploys a journaled cluster, runs a
// publish/move/publish workload with two movements, and leaves the run's
// records in j. It asserts only workload-level success (the subscriber got
// every publication); the properties themselves are the auditor's job.
func runMovementWorkload(t *testing.T, j *journal.Journal, proto core.Protocol, covering bool, moveTimeout time.Duration) {
	t.Helper()
	c, err := cluster.New(cluster.Options{
		Protocol:    proto,
		Covering:    covering,
		MoveTimeout: moveTimeout,
		Journal:     j,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	pub, err := c.NewClient("pub", "b1")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.NewClient("sub", "b14")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Advertise(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	settle := func() {
		t.Helper()
		if err := c.SettleFor(20 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	settle()
	if _, err := sub.Subscribe(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	settle()

	publish := func(x float64) {
		t.Helper()
		if _, err := pub.Publish(predicate.Event{"x": predicate.Number(x)}); err != nil {
			t.Fatal(err)
		}
		settle()
	}
	move := func(target message.BrokerID) {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := sub.Move(ctx, target); err != nil {
			t.Fatalf("move to %s: %v", target, err)
		}
		settle()
	}

	publish(1)
	move("b7")
	publish(2)
	move("b2")
	publish(3)

	if got := sub.QueueLen(); got != 3 {
		t.Fatalf("subscriber queued %d publications, want 3", got)
	}
}

// TestAuditCleanRuns is the no-false-positives guarantee the fig. 8
// acceptance gate depends on: real movements under both protocols and both
// engines must audit clean.
func TestAuditCleanRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("live-cluster audit run")
	}
	j := journal.New(0)
	runMovementWorkload(t, j, core.ProtocolReconfig, false, 0)
	runMovementWorkload(t, j, core.ProtocolEndToEnd, true, 0)
	runMovementWorkload(t, j, core.ProtocolReconfig, false, 10*time.Second)

	rep := audit.Audit(j.Snapshot())
	if len(rep.Runs) != 3 {
		t.Fatalf("runs audited = %d, want 3", len(rep.Runs))
	}
	if !rep.Clean() {
		var sb strings.Builder
		rep.Write(&sb)
		t.Fatalf("clean workload flagged:\n%s", sb.String())
	}
	for _, run := range rep.Runs {
		if run.Committed < 2 {
			t.Errorf("run %d committed %d movements, want >= 2 (%s)", run.Run, run.Committed, run.Config)
		}
		if run.Delivered < 3 {
			t.Errorf("run %d delivered %d publications, want >= 3", run.Run, run.Delivered)
		}
		if run.Aborted != 0 || run.Unresolved != 0 {
			t.Errorf("run %d: aborted=%d unresolved=%d", run.Run, run.Aborted, run.Unresolved)
		}
	}
}

// TestAuditSeesLamportChains spot-checks that the journal the cluster
// produced actually carries causal structure the auditor relies on: every
// transaction's timeline is strictly increasing in Lamport order.
func TestAuditSeesLamportChains(t *testing.T) {
	if testing.Short() {
		t.Skip("live-cluster audit run")
	}
	j := journal.New(0)
	runMovementWorkload(t, j, core.ProtocolReconfig, false, 0)
	recs := j.Snapshot()
	rep := audit.Audit(recs)
	if !rep.Clean() {
		t.Fatalf("workload flagged: %v", rep.Violations())
	}

	txs := map[string]bool{}
	for _, r := range recs {
		if r.Cat == journal.CatProtocol && r.Tx != "" {
			txs[r.Tx] = true
		}
	}
	if len(txs) < 2 {
		t.Fatalf("expected >= 2 movement transactions, saw %d", len(txs))
	}
	for tx := range txs {
		tl := audit.Timeline(recs, 1, tx)
		if len(tl) < 10 {
			t.Errorf("tx %s timeline has only %d records", tx, len(tl))
		}
		for i := 1; i < len(tl); i++ {
			// Records at distinct sites are causally chained through the
			// control messages; equal stamps may only occur within one
			// site's concurrent events, never decreasing overall.
			if tl[i].Lamport < tl[i-1].Lamport {
				t.Fatalf("tx %s timeline not causally ordered at %d: %d after %d",
					tx, i, tl[i].Lamport, tl[i-1].Lamport)
			}
		}
	}
}
