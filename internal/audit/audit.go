// Package audit mechanically verifies the paper's ACID mobility properties
// against a flight-recorder journal (internal/journal). It is an offline
// checker: given the causally-ordered record stream of one or more runs, it
// replays the records and verifies
//
//	(a) exactly-once delivery — every publication a broker handed to a
//	    subscriber's stub (directly or via a movement buffer) enters that
//	    subscriber's application queue exactly once, across any number of
//	    movement windows;
//	(b) 3PC phase-order legality — every movement transaction's protocol
//	    steps appear in an order the engine (blocking or non-blocking)
//	    allows, and each transaction resolves to exactly one outcome;
//	(c) routing-state convergence — after the run settles, no prepared
//	    shadow configuration survives, no routing entry points at a client
//	    copy the client has left, and the moved client's filters are
//	    present at its final host;
//	(d) movement atomicity — an aborted transaction leaves the moving
//	    client's routing state exactly as it was before the transaction
//	    prepared anything, and the client itself resumes;
//	(e) replication safety — when a standby finishes an in-doubt movement,
//	    every takeover is fenced by a generation strictly above the original
//	    coordinator's, generations never repeat, and all takeovers agree
//	    with the transaction's single resolved outcome.
//
// The auditor groups records by run (journal.BeginRun boundaries) because
// transaction, client, and message identifiers are only unique within one
// deployment.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"padres/internal/journal"
)

// Separators mirrored from the engine: broker shadow records are
// "id~tx" (internal/broker), end-to-end re-issued filters are "id#tx"
// (internal/core). The auditor normalizes both back to the stable base so
// one logical filter is tracked across movements.
const (
	shadowSep = "~"
	epochSep  = "#"
)

// baseID strips shadow and epoch qualifiers from a routing record ID.
func baseID(id string) string {
	if i := strings.Index(id, shadowSep); i >= 0 {
		id = id[:i]
	}
	if i := strings.Index(id, epochSep); i >= 0 {
		id = id[:i]
	}
	return id
}

func isShadow(id string) bool { return strings.Contains(id, shadowSep) }

// Violation is one verified property failure.
type Violation struct {
	Run    int64  `json:"run"`
	Check  string `json:"check"` // delivery | phase-order | convergence | atomicity | replication
	Tx     string `json:"tx,omitempty"`
	Client string `json:"client,omitempty"`
	Site   string `json:"site,omitempty"`
	Ref    string `json:"ref,omitempty"`
	Detail string `json:"detail"`
}

// String renders the violation for reports.
func (v Violation) String() string {
	s := fmt.Sprintf("run=%d [%s]", v.Run, v.Check)
	if v.Tx != "" {
		s += " tx=" + v.Tx
	}
	if v.Client != "" {
		s += " client=" + v.Client
	}
	if v.Site != "" {
		s += " site=" + v.Site
	}
	if v.Ref != "" {
		s += " ref=" + v.Ref
	}
	return s + ": " + v.Detail
}

// RunReport is the audit result of one deployment within the journal.
type RunReport struct {
	Run        int64
	Config     string // the run-config detail (protocol, covering, timeout)
	Records    int
	Txs        int
	Committed  int
	Aborted    int
	Unresolved int
	// CrashInterrupted counts transactions that never resolved because a
	// coordinator site crash-stopped mid-protocol — a legal outcome under
	// the paper's failure model, not a violation.
	CrashInterrupted int
	// CrashedSites lists the sites with a journaled crash-stop, sorted.
	CrashedSites []string
	// RestartedSites lists the crashed sites later replaced by a recovered
	// broker (a causally later broker-restart record), sorted. Their routing
	// tables are held to the full convergence properties.
	RestartedSites []string
	Delivered      int // publications that entered an application queue
	Violations     []Violation
}

// Clean reports whether the run satisfied every property.
func (r RunReport) Clean() bool { return len(r.Violations) == 0 }

// Report is the audit result for a whole journal.
type Report struct {
	Runs    []RunReport
	Records int
}

// Clean reports whether every run satisfied every property.
func (r *Report) Clean() bool {
	for _, run := range r.Runs {
		if !run.Clean() {
			return false
		}
	}
	return true
}

// Violations flattens all runs' violations.
func (r *Report) Violations() []Violation {
	var out []Violation
	for _, run := range r.Runs {
		out = append(out, run.Violations...)
	}
	return out
}

// Audit replays a journal and verifies the mobility properties. The record
// slice is re-sorted causally in place.
func Audit(recs []journal.Record) *Report {
	journal.SortCausal(recs)
	byRun := make(map[int64][]journal.Record)
	var runs []int64
	for _, r := range recs {
		if _, ok := byRun[r.Run]; !ok {
			runs = append(runs, r.Run)
		}
		byRun[r.Run] = append(byRun[r.Run], r)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i] < runs[j] })

	rep := &Report{Records: len(recs)}
	for _, run := range runs {
		rep.Runs = append(rep.Runs, auditRun(run, byRun[run]))
	}
	return rep
}

// auditRun checks one deployment's records (already causally sorted).
func auditRun(run int64, recs []journal.Record) RunReport {
	rr := RunReport{Run: run, Records: len(recs)}
	for _, r := range recs {
		if r.Kind == journal.KindRunConfig {
			rr.Config = r.Detail
			break
		}
	}
	blocking := strings.Contains(rr.Config, "timeout=0s")

	// Sites that crash-stopped during the run. A crash excuses the legal
	// consequences the paper's failure model allows — unresolved
	// transactions whose coordinator died, routing state stranded at the
	// dead site, deliveries the dead container never completed — but never
	// the safety core: duplicate delivery and double resolution stay
	// violations no matter what crashed.
	//
	// A restart narrows the excuse: the replacement broker recovered its
	// routing state from its durable store, so its tables must converge like
	// any live site's — stillDown (crashed, never restarted) is what gates
	// the convergence inspection. Container-level consequences stay excused
	// by crashed alone: protocol state and hosted clients are not durable,
	// so an interrupted transaction may legally stay unresolved and a dead
	// client copy is never resurrected, restart or not.
	crashed := make(map[string]bool)
	stillDown := make(map[string]bool)
	for _, r := range recs { // causal order: a restart clears earlier crashes
		switch r.Kind {
		case journal.KindBrokerCrash:
			crashed[r.Site] = true
			stillDown[r.Site] = true
		case journal.KindBrokerRestart:
			delete(stillDown, r.Site)
		}
	}
	for site := range crashed {
		rr.CrashedSites = append(rr.CrashedSites, site)
		if !stillDown[site] {
			rr.RestartedSites = append(rr.RestartedSites, site)
		}
	}
	sort.Strings(rr.CrashedSites)
	sort.Strings(rr.RestartedSites)

	txs := collectTxs(recs)
	rr.Txs = len(txs)
	// Transactions with a crashed coordinator: their shadows and unresolved
	// outcomes are crash consequences, not protocol bugs.
	crashedTx := make(map[string]bool)
	for _, tx := range txs {
		if tx.touchesSite(crashed) {
			crashedTx[tx.id] = true
		}
	}
	for _, tx := range txs {
		switch {
		case tx.committed:
			rr.Committed++
		case tx.aborted:
			rr.Aborted++
		case crashedTx[tx.id]:
			rr.CrashInterrupted++
		default:
			rr.Unresolved++
		}
		rr.Violations = append(rr.Violations, checkPhaseOrder(run, tx, blocking, crashedTx[tx.id])...)
		if tx.aborted && !tx.committed {
			rr.Violations = append(rr.Violations, checkAtomicity(run, tx, recs, crashed, crashedTx[tx.id])...)
		}
		rr.Violations = append(rr.Violations, checkReplication(run, tx)...)
	}
	var delivered int
	rr.Violations = append(rr.Violations, checkDelivery(run, recs, &delivered, crashed)...)
	rr.Delivered = delivered
	rr.Violations = append(rr.Violations, checkConvergence(run, recs, crashed, stillDown, crashedTx)...)
	return rr
}

// Timeline returns the causally ordered records of one movement transaction
// within one run (protocol steps, routing mutations, link transmissions,
// and client events attributed to it).
func Timeline(recs []journal.Record, run int64, tx string) []journal.Record {
	var out []journal.Record
	for _, r := range recs {
		if r.Run == run && r.Tx == tx {
			out = append(out, r)
		}
	}
	journal.SortCausal(out)
	return out
}
