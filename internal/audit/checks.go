package audit

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"padres/internal/journal"
)

// txRecord is one movement transaction's evidence: its protocol steps in
// causal order plus the resolved outcome.
type txRecord struct {
	id        string
	client    string
	steps     []journal.Record // CatProtocol records, causal order
	committed bool
	aborted   bool
}

// collectTxs groups the run's protocol records by transaction, preserving
// the causal order of the input.
func collectTxs(recs []journal.Record) []*txRecord {
	byID := make(map[string]*txRecord)
	var order []string
	for _, r := range recs {
		if r.Cat != journal.CatProtocol || r.Tx == "" {
			continue
		}
		tx, ok := byID[r.Tx]
		if !ok {
			tx = &txRecord{id: r.Tx}
			byID[r.Tx] = tx
			order = append(order, r.Tx)
		}
		tx.steps = append(tx.steps, r)
		if tx.client == "" {
			tx.client = r.Client
		}
		switch r.Kind {
		case "committed":
			tx.committed = true
		case "aborted":
			tx.aborted = true
		}
	}
	out := make([]*txRecord, 0, len(order))
	for _, id := range order {
		out = append(out, byID[id])
	}
	return out
}

// touchesSite reports whether any of the transaction's coordinator steps
// was recorded at one of the given sites.
func (tx *txRecord) touchesSite(sites map[string]bool) bool {
	for _, s := range tx.steps {
		if sites[s.Site] {
			return true
		}
	}
	return false
}

// first returns the causal position of the first step of the given kind, or
// -1 when the transaction never recorded it.
func (tx *txRecord) first(kind string) int {
	for i, s := range tx.steps {
		if s.Kind == kind {
			return i
		}
	}
	return -1
}

// phasePrecedence lists the orderings the 3PC movement conversation
// (Fig. 3) requires whenever both steps occur: the successful path down the
// protocol, and the reject path. Lamport propagation makes these orderings
// checkable across coordinators — each step is causally downstream of its
// predecessor through the control message that carried it, so its stamp is
// strictly greater.
var phasePrecedence = [][2]string{
	{"move-requested", "negotiate-sent"},
	{"negotiate-sent", "negotiate-received"},
	{"negotiate-received", "approve-sent"},
	{"negotiate-received", "reject-sent"},
	{"approve-sent", "approve-received"},
	{"approve-received", "state-sent"},
	{"state-sent", "state-received"},
	{"state-received", "ack-sent"},
	{"ack-sent", "ack-received"},
	{"ack-received", "committed"},
	{"reject-sent", "reject-received"},
	{"reject-received", "aborted"},
}

// checkPhaseOrder verifies property (b): each transaction's steps obey the
// 3PC conversation's order, resolve to exactly one outcome, and — under the
// blocking engine — never time out. crashInterrupted excuses a missing
// resolution (a dead coordinator cannot resolve) but nothing else: double
// resolution and out-of-order steps are violations even across a crash.
func checkPhaseOrder(run int64, tx *txRecord, blocking, crashInterrupted bool) []Violation {
	var out []Violation
	add := func(detail string) {
		out = append(out, Violation{Run: run, Check: "phase-order", Tx: tx.id, Client: tx.client, Detail: detail})
	}

	if tx.committed && tx.aborted {
		add("transaction both committed and aborted")
	}
	if !tx.committed && !tx.aborted && !crashInterrupted {
		add("transaction never resolved (no committed or aborted step)")
	}

	for _, pair := range phasePrecedence {
		a, b := tx.first(pair[0]), tx.first(pair[1])
		if a < 0 || b < 0 {
			continue
		}
		if a > b {
			add(fmt.Sprintf("%s observed before %s (lamport %d vs %d)",
				pair[1], pair[0], tx.steps[b].Lamport, tx.steps[a].Lamport))
		}
	}

	if tx.committed {
		if tx.first("ack-received") < 0 {
			add("committed without receiving acknowledgement (message 5)")
		}
	}
	if tx.aborted && !tx.committed {
		if tx.first("reject-received") < 0 && tx.first("abort-received") < 0 &&
			tx.first("source-timeout") < 0 && tx.first("abort-sent") < 0 {
			add("aborted without a rejection, abort, or timeout cause")
		}
	}
	if blocking {
		for _, k := range []string{"source-timeout", "target-timeout"} {
			if tx.first(k) >= 0 {
				add("blocking engine recorded a " + k)
			}
		}
	}
	return out
}

// checkDelivery verifies property (a): every publication evidenced as
// reaching a subscriber's stub (a broker-level deliver, a transfer buffer,
// or a target shell buffer) enters that subscriber's application queue
// exactly once — no duplicates across the movement's dual-configuration
// window, no losses across the state transfer. A publication evidenced only
// at a crashed site is excused: the container died with the message in
// hand, which is loss the crash-stop model permits. Duplicates are never
// excused.
func checkDelivery(run int64, recs []journal.Record, delivered *int, crashed map[string]bool) []Violation {
	type key struct{ client, pub string }
	type evidence struct{ kind, site string }
	evidenced := make(map[key]evidence) // first evidence, for reporting
	queued := make(map[key]int)

	for _, r := range recs {
		switch r.Kind {
		case journal.KindDeliver, journal.KindClientBuffer, journal.KindShellBuffer:
			k := key{r.Client, r.Ref}
			if _, ok := evidenced[k]; !ok {
				evidenced[k] = evidence{r.Kind, r.Site}
			}
		case journal.KindClientDeliver:
			queued[key{r.Client, r.Ref}]++
		}
	}

	var out []Violation
	for k, n := range queued {
		*delivered += n
		if n > 1 {
			out = append(out, Violation{
				Run: run, Check: "delivery", Client: k.client, Ref: k.pub,
				Detail: fmt.Sprintf("publication entered the application queue %d times", n),
			})
		}
	}
	for k, ev := range evidenced {
		if queued[k] == 0 && !crashed[ev.site] {
			out = append(out, Violation{
				Run: run, Check: "delivery", Client: k.client, Ref: k.pub,
				Detail: fmt.Sprintf("publication reached the stub (%s) but never entered the application queue", ev.kind),
			})
		}
	}
	sortViolations(out)
	return out
}

// tableEntry is the replayed state of one routing record.
type tableEntry struct {
	client  string
	lastHop string
}

// tableKey addresses one routing table at one site.
type tableKey struct {
	site  string
	table string // "srt" | "prt"
}

// clientNode renders the location-qualified node identity mirrored from
// message.ClientNode.
func clientNode(client, brokerSite string) string { return client + "@" + brokerSite }

// checkConvergence verifies property (c) by replaying every routing-table
// mutation to its final state: no shadow configuration survives the run, no
// entry points at a client copy its client has departed from, and each
// moved client's filters exist at its final host.
//
// Crash relaxations: tables at still-down sites are not inspected (the
// state died with the broker and nobody recovered it) — but a restarted
// site is inspected in full, because its replacement rebuilt the tables
// from the durable store and they must converge like any live site's. A
// shadow surviving at an inspected site is excused when its transaction's
// coordinator crashed (the cleanup order could never arrive); orphaned
// entries are excused when the abandoned copy's host or the client's final
// host ever crashed (hosted clients are not durable, so the unsubscription
// path is severed even across a restart); the final-host filter check is
// likewise skipped when the final host ever crashed.
func checkConvergence(run int64, recs []journal.Record, crashed, stillDown, crashedTx map[string]bool) []Violation {
	cs := newConvergenceState()
	for _, r := range recs {
		cs.apply(r)
	}
	return cs.violations(run, crashed, stillDown, crashedTx)
}

// checkAtomicity verifies property (d) for one aborted transaction: every
// routing mutation the transaction performed on the moving client's records
// is undone — per site, table, and base identifier the tagged inserts and
// removes cancel out — and the client itself returns to the started state.
// State stranded at a crashed site is excused (it died with the container),
// and a crash-interrupted transaction skips the rollback check entirely:
// cleanup propagation is coordinated by the source, so a dead coordinator
// legally strands tx-tagged entries at live sites too. The client must
// still resume unless the coordinator that would resume it crashed.
func checkAtomicity(run int64, tx *txRecord, recs []journal.Record, crashed map[string]bool, crashInterrupted bool) []Violation {
	type key struct {
		site  string
		table string
		base  string
	}
	net := make(map[key]int)
	// The abort cause (rejection, abort message, or timeout) is recorded at
	// the source coordinator before it resumes the client, on the same site
	// clock — so a "->started" transition with a later stamp at that site
	// proves the resume.
	var causeAt uint64
	var causeSite string
	resumed := false

	for _, r := range recs {
		if r.Cat == journal.CatProtocol && r.Tx == tx.id && causeAt == 0 {
			switch r.Kind {
			case "reject-received", "abort-received", "source-timeout":
				causeAt, causeSite = r.Lamport, r.Site
			}
		}
		if r.Kind == journal.KindClientState && r.Client == tx.client &&
			strings.HasSuffix(r.Detail, "->started") &&
			causeAt > 0 && r.Site == causeSite && r.Lamport > causeAt {
			resumed = true
		}
		if r.Tx != tx.id || r.Client != tx.client {
			continue
		}
		switch r.Kind {
		case journal.KindSRTInsert:
			net[key{r.Site, "srt", baseID(r.Ref)}]++
		case journal.KindSRTRemove:
			net[key{r.Site, "srt", baseID(r.Ref)}]--
		case journal.KindPRTInsert:
			net[key{r.Site, "prt", baseID(r.Ref)}]++
		case journal.KindPRTRemove:
			net[key{r.Site, "prt", baseID(r.Ref)}]--
		}
	}

	var out []Violation
	for k, n := range net {
		if n == 0 || crashed[k.site] || crashInterrupted {
			continue
		}
		verb := "left behind"
		if n < 0 {
			verb = "destroyed"
		}
		out = append(out, Violation{
			Run: run, Check: "atomicity", Tx: tx.id, Client: tx.client, Site: k.site, Ref: k.base,
			Detail: fmt.Sprintf("aborted transaction %s %s state in the %s (insert-remove net %+d)",
				verb, k.base, strings.ToUpper(k.table), n),
		})
	}
	if causeAt > 0 && !resumed && !crashed[causeSite] {
		out = append(out, Violation{
			Run: run, Check: "atomicity", Tx: tx.id, Client: tx.client,
			Detail: "client did not return to the started state after the abort",
		})
	}
	sortViolations(out)
	return out
}

// repTakeover is one standby-takeover journal record, parsed: the fencing
// generation the claimant won the lease at, the outcome it acted on, and
// the standby site that performed the takeover.
type repTakeover struct {
	gen     uint64
	outcome string
	site    string
}

// detailField extracts the value of one "key=value" token from a journal
// detail string, or "" when the key is absent.
func detailField(detail, key string) string {
	prefix := key + "="
	for _, tok := range strings.Fields(detail) {
		if strings.HasPrefix(tok, prefix) {
			return tok[len(prefix):]
		}
	}
	return ""
}

// parseTakeover reads the fields of a standby-takeover record
// ("gen=%d outcome=%s"). An unparsable generation yields 0, which the check
// flags — a takeover without a fence is a violation either way.
func parseTakeover(r journal.Record) repTakeover {
	gen, _ := strconv.ParseUint(detailField(r.Detail, "gen"), 10, 64)
	return repTakeover{gen: gen, outcome: detailField(r.Detail, "outcome"), site: r.Site}
}

// checkReplication verifies property (e) — the quorum-replication layer's
// safety rules — for one transaction, from its standby-takeover records:
//
//   - every takeover carries a fencing generation strictly above the
//     original coordinator's (gen >= 1, the coordinator acts at gen 0);
//   - no two takeovers share a generation (each granted lease claim must
//     bump the fence, so a shared generation means fencing failed);
//   - all takeovers agree on one outcome;
//   - that outcome matches the transaction's resolution when it resolved
//     to exactly one (double resolution is already a phase-order finding).
//
// Conflicting replica-decision records alone are deliberately NOT flagged:
// a replica may durably hold "committed" from a quorum round that failed,
// later superseded by the coordinator's abort. The invariant constrains
// outcomes that were acted on — takeovers and the resolution — not every
// record written along the way.
func checkReplication(run int64, tx *txRecord) []Violation {
	var takeovers []repTakeover
	for _, s := range tx.steps {
		if s.Kind == "standby-takeover" {
			takeovers = append(takeovers, parseTakeover(s))
		}
	}
	return replicationViolations(run, tx.id, tx.client, takeovers, tx.committed, tx.aborted)
}

// replicationViolations derives the replication findings from parsed
// takeover evidence. Shared by the batch check and the streaming auditor so
// both report the identical violation set; the derivation is independent of
// the order the takeovers were observed in.
func replicationViolations(run int64, txID, client string, takeovers []repTakeover, committed, aborted bool) []Violation {
	if len(takeovers) == 0 {
		return nil
	}
	var out []Violation
	add := func(site, detail string) {
		out = append(out, Violation{Run: run, Check: "replication", Tx: txID, Client: client, Site: site, Detail: detail})
	}

	byGen := make(map[uint64]int)
	outcomes := make(map[string]bool)
	for _, t := range takeovers {
		if t.gen == 0 {
			add(t.site, "standby takeover without a fencing generation (gen=0)")
		}
		byGen[t.gen]++
		outcomes[t.outcome] = true
	}
	gens := make([]uint64, 0, len(byGen))
	for g := range byGen {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	for _, g := range gens {
		if n := byGen[g]; n > 1 {
			add("", fmt.Sprintf("%d standby takeovers share fencing generation %d", n, g))
		}
	}

	if len(outcomes) > 1 {
		list := make([]string, 0, len(outcomes))
		for oc := range outcomes {
			list = append(list, oc)
		}
		sort.Strings(list)
		add("", "standby takeovers disagree on outcome ("+strings.Join(list, " vs ")+")")
	} else if committed != aborted { // resolved to exactly one outcome
		oc := takeovers[0].outcome
		switch {
		case committed && oc != "committed":
			add("", fmt.Sprintf("standby takeover resolved %s but the transaction committed", oc))
		case aborted && oc != "aborted":
			add("", fmt.Sprintf("standby takeover resolved %s but the transaction aborted", oc))
		}
	}
	sortViolations(out)
	return out
}

// splitClientNode parses a location-qualified client node "c@b"; ok is
// false for plain broker nodes.
func splitClientNode(node string) (client, broker string, ok bool) {
	i := strings.Index(node, "@")
	if i < 0 {
		return "", "", false
	}
	return node[:i], node[i+1:], true
}

// txOfShadow extracts the transaction from a shadow record ID.
func txOfShadow(id string) string {
	if i := strings.Index(id, shadowSep); i >= 0 {
		return id[i+1:]
	}
	return ""
}

// sortViolations orders violations deterministically for stable reports.
func sortViolations(v []Violation) {
	sort.Slice(v, func(i, j int) bool {
		a, b := v[i], v[j]
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.Tx != b.Tx {
			return a.Tx < b.Tx
		}
		if a.Client != b.Client {
			return a.Client < b.Client
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Ref < b.Ref
	})
}
