package audit

import (
	"fmt"
	"strings"
	"testing"

	"padres/internal/journal"
)

// checkStatusOf returns the live verdict of one check.
func checkStatusOf(st StreamStatus, check string) CheckVerdict {
	for _, c := range st.Checks {
		if c.Check == check {
			return c
		}
	}
	return CheckVerdict{}
}

// reportsEqual compares a batch report against a stream Finalize report.
func reportsEqual(batch, stream *Report) string { return DiffReports(batch, stream) }

// TestStreamDuplicateReportedImmediately: the acceptance property — an
// injected duplicate delivery is flagged during ingest, before any
// watermark settlement and long before Finalize.
func TestStreamDuplicateReportedImmediately(t *testing.T) {
	var fired []Violation
	s := NewStream(StreamOptions{OnViolation: func(v Violation) { fired = append(fired, v) }})

	recs := []journal.Record{
		cfg("protocol=reconfig covering=false timeout=0s"),
		rec(journal.CatBroker, journal.KindDeliver, "b3", 10, "", "sub", "p1", ""),
		rec(journal.CatClient, journal.KindClientDeliver, "sub@b3", 11, "", "sub", "p1", ""),
	}
	s.Ingest("j", recs...)
	if len(fired) != 0 {
		t.Fatalf("violation fired on a clean single delivery: %v", fired)
	}
	if st := s.Status(); checkStatusOf(st, "delivery").Status != StatusClean {
		t.Fatalf("delivery not clean before the duplicate: %+v", st.Checks)
	}

	dup := rec(journal.CatClient, journal.KindClientDeliver, "sub@b3", 12, "", "sub", "p1", "")
	s.Ingest("j", dup)
	if len(fired) != 1 || fired[0].Check != "delivery" {
		t.Fatalf("duplicate not fired immediately: %v", fired)
	}
	st := s.Status()
	if got := checkStatusOf(st, "delivery"); got.Status != StatusViolated || got.Violations != 1 {
		t.Fatalf("delivery check not VIOLATED immediately: %+v", got)
	}

	// Finalize must agree with batch on the same records.
	all := append(recs, dup)
	if diff := reportsEqual(Audit(append([]journal.Record(nil), all...)), s.Finalize()); diff != "" {
		t.Fatalf("stream diverged from batch: %s", diff)
	}
}

// TestStreamBoundedMemory: settled publications are evicted once the
// watermark passes them, so tracked state stays bounded by in-flight work
// while the record count grows without bound.
func TestStreamBoundedMemory(t *testing.T) {
	s := NewStream(StreamOptions{SettleHorizon: 64})
	const n = 20000
	lam := uint64(1)
	seq := uint64(1)
	mk := func(kind string, cat journal.Category, ref string) journal.Record {
		r := journal.Record{
			Run: 1, Lamport: lam, Seq: seq, Site: "b1", Cat: cat, Kind: kind,
			Client: "sub", Ref: ref,
		}
		lam++
		seq++
		return r
	}
	for i := 0; i < n; i++ {
		ref := fmt.Sprintf("p%d", i)
		s.Ingest("j",
			mk(journal.KindDeliver, journal.CatBroker, ref),
			mk(journal.KindClientDeliver, journal.CatClient, ref),
		)
	}
	st := s.Status()
	if st.Records != 2*n {
		t.Fatalf("ingested %d records, want %d", st.Records, 2*n)
	}
	if st.StateEntries > 2000 {
		t.Fatalf("state grew with run length: %d entries for %d pubs (settled %d)",
			st.StateEntries, n, st.Settled)
	}
	if st.Settled < n-2000 {
		t.Fatalf("settlement barely ran: %d settled of %d", st.Settled, n)
	}
	rep := s.Finalize()
	if !rep.Clean() {
		t.Fatalf("clean workload flagged: %v", rep.Violations())
	}
	if rep.Runs[0].Delivered != n {
		t.Fatalf("delivered %d, want %d (settled pubs must still count)", rep.Runs[0].Delivered, n)
	}
}

// TestStreamLossyDegradesAbsenceChecks: reported loss suppresses
// absence-based findings (LOSSY, not VIOLATED) while presence-based
// duplicates are still reported.
func TestStreamLossyDegradesAbsenceChecks(t *testing.T) {
	s := NewStream(StreamOptions{})
	s.Ingest("j",
		cfg("protocol=reconfig covering=false timeout=0s"),
		// Evidence without a queue record: would be a delivery-loss
		// violation on a trusted stream.
		rec(journal.CatBroker, journal.KindDeliver, "b3", 10, "", "sub", "p1", ""),
		// A genuine duplicate: must survive the loss degrade.
		rec(journal.CatClient, journal.KindClientDeliver, "sub@b3", 11, "", "sub", "p2", ""),
		rec(journal.CatClient, journal.KindClientDeliver, "sub@b3", 12, "", "sub", "p2", ""),
	)
	s.NoteDropped("j", 3)

	st := s.Status()
	if !st.Lossy || len(st.Intervals) != 1 || st.Intervals[0].Missing != 3 {
		t.Fatalf("loss not recorded: %+v", st)
	}
	rep := s.Finalize()
	var dup, lost int
	for _, v := range rep.Violations() {
		switch {
		case strings.Contains(v.Detail, "times"):
			dup++
		case strings.Contains(v.Detail, "never entered"):
			lost++
		}
	}
	if dup != 1 {
		t.Fatalf("duplicate suppressed by loss degrade: %v", rep.Violations())
	}
	if lost != 0 {
		t.Fatalf("absence-based loss violation reported despite LOSSY interval: %v", rep.Violations())
	}
}

// TestStreamTailLossRecord: a synthetic tail-loss marker in the feed (as
// emitted by /journal/stream) degrades the verdict like NoteDropped.
func TestStreamTailLossRecord(t *testing.T) {
	s := NewStream(StreamOptions{})
	s.Ingest("j", rec(journal.CatBroker, journal.KindDeliver, "b3", 10, "", "sub", "p1", ""))
	s.Ingest("j", journal.TailLossRecord(1, 10, 2))
	st := s.Status()
	if !st.Lossy {
		t.Fatal("tail-loss record did not degrade the stream")
	}
	if got := checkStatusOf(st, "delivery").Status; got != StatusLossy {
		t.Fatalf("delivery status = %s, want LOSSY", got)
	}
	if rep := s.Finalize(); !rep.Clean() {
		t.Fatalf("absence-based violation reported under loss: %v", rep.Violations())
	}
}

// TestStreamPhaseChecksMatchBatch: synthetic protocol histories — clean,
// inverted, unresolved, double-resolved — produce the same verdicts as
// batch when fed out of order across two sources.
func TestStreamPhaseChecksMatchBatch(t *testing.T) {
	base := []journal.Record{cfg("protocol=reconfig covering=false timeout=0s")}
	clean := protoSteps("x1", "c1", 10)
	inverted := protoSteps("x2", "c2", 40)
	// Swap the stamps of approve-sent and negotiate-received: an inversion.
	inverted[2].Lamport, inverted[3].Lamport = inverted[3].Lamport, inverted[2].Lamport
	unresolved := protoSteps("x3", "c3", 80)[:4] // stops after approve-sent

	all := append(append(append(base, clean...), inverted...), unresolved...)

	s := NewStream(StreamOptions{})
	// Feed the two coordinator sites as separate sources, preserving
	// per-site order (as per-broker tails would).
	for _, site := range []string{"journal", "b1", "b3"} {
		var chunk []journal.Record
		for _, r := range all {
			if r.Site == site {
				chunk = append(chunk, r)
			}
		}
		s.Ingest(site, chunk...)
	}
	if diff := reportsEqual(Audit(append([]journal.Record(nil), all...)), s.Finalize()); diff != "" {
		t.Fatalf("stream diverged from batch: %s", diff)
	}
}
