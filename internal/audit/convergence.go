package audit

import (
	"fmt"
	"strings"

	"padres/internal/journal"
)

// cursor is a position in one journal stream: Lamport-major with the
// per-process sequence as tiebreaker — the same total order journal.Cursor
// exposes over HTTP and SortCausal uses within a run.
type cursor struct {
	lamport uint64
	seq     uint64
}

func cursorOf(r journal.Record) cursor { return cursor{r.Lamport, r.Seq} }

func (c cursor) less(o cursor) bool {
	if c.lamport != o.lamport {
		return c.lamport < o.lamport
	}
	return c.seq < o.seq
}

func (c cursor) zero() bool { return c == cursor{} }

// convergenceState incrementally replays the routing-relevant records of
// one run: the live SRT/PRT contents per site, each client's final host,
// its last arrival, and the evidence needed to verify the final-host
// filter property. Both the batch auditor (applying a causally sorted
// slice) and the streaming auditor (applying per-source tails as they
// arrive) drive the same state machine; apply only assumes that mutations
// of one site's tables arrive in that site's emission order — cross-site
// interleaving is free because tables are per-site and the host/arrive
// trackers order by (Lamport, Seq) explicitly.
type convergenceState struct {
	tables     map[tableKey]map[string]tableEntry
	finalHost  map[string]journal.Record // client -> last attach/arrive record
	lastArrive map[string]journal.Record
	// Inserts tagged with each client's arrival transaction at the target
	// site: the filters the movement promised to re-home.
	taggedInserts map[string][]journal.Record
	// Untagged (client-issued) removes, to excuse filters the client itself
	// retracted after arriving.
	untaggedRemoved map[tableKey]map[string]bool
	// Live shadow records per transaction, so the streaming auditor keeps a
	// transaction in flight while its prepared configuration survives.
	shadowCount map[string]int
	lastMut     cursor // cursor of the newest routing/host mutation applied
}

func newConvergenceState() *convergenceState {
	return &convergenceState{
		tables:          make(map[tableKey]map[string]tableEntry),
		finalHost:       make(map[string]journal.Record),
		lastArrive:      make(map[string]journal.Record),
		taggedInserts:   make(map[string][]journal.Record),
		untaggedRemoved: make(map[tableKey]map[string]bool),
		shadowCount:     make(map[string]int),
	}
}

// apply folds one record into the replayed state. Non-routing records are
// ignored, so callers can feed the full stream.
func (cs *convergenceState) apply(r journal.Record) {
	switch r.Kind {
	case journal.KindClientAttach, journal.KindClientArrive:
		if cur, ok := cs.finalHost[r.Client]; !ok || cursorOf(cur).less(cursorOf(r)) {
			cs.finalHost[r.Client] = r
		}
		if r.Kind == journal.KindClientArrive {
			if cur, ok := cs.lastArrive[r.Client]; !ok || cursorOf(cur).less(cursorOf(r)) {
				// A newer arrival supersedes the old transaction: its tagged
				// inserts can never be read again, so drop them.
				if ok && cur.Tx != r.Tx {
					delete(cs.taggedInserts, cur.Tx)
				}
				cs.lastArrive[r.Client] = r
			} else if cur.Tx != r.Tx {
				delete(cs.taggedInserts, r.Tx)
			}
		}
	case journal.KindSRTInsert, journal.KindPRTInsert, journal.KindSRTRemove, journal.KindPRTRemove:
		table := "srt"
		if r.Kind == journal.KindPRTInsert || r.Kind == journal.KindPRTRemove {
			table = "prt"
		}
		k := tableKey{r.Site, table}
		t := cs.tables[k]
		if t == nil {
			t = make(map[string]tableEntry)
			cs.tables[k] = t
		}
		switch r.Kind {
		case journal.KindSRTInsert, journal.KindPRTInsert:
			if _, existed := t[r.Ref]; !existed && isShadow(r.Ref) {
				cs.shadowCount[txOfShadow(r.Ref)]++
			}
			t[r.Ref] = tableEntry{client: r.Client, lastHop: r.To}
			if r.Tx != "" {
				cs.taggedInserts[r.Tx] = append(cs.taggedInserts[r.Tx], r)
			}
		default:
			if _, existed := t[r.Ref]; existed && isShadow(r.Ref) {
				tx := txOfShadow(r.Ref)
				if cs.shadowCount[tx]--; cs.shadowCount[tx] <= 0 {
					delete(cs.shadowCount, tx)
				}
			}
			delete(t, r.Ref)
			if r.Tx == "" {
				u := cs.untaggedRemoved[k]
				if u == nil {
					u = make(map[string]bool)
					cs.untaggedRemoved[k] = u
				}
				u[baseID(r.Ref)] = true
			}
		}
	default:
		return
	}
	if cs.lastMut.less(cursorOf(r)) {
		cs.lastMut = cursorOf(r)
	}
}

// dropTx forgets a settled transaction's tagged inserts when they can no
// longer be read (the transaction is not any client's last arrival), so
// the streaming auditor's memory stays bounded by in-flight work.
func (cs *convergenceState) dropTx(tx, client string) {
	if la, ok := cs.lastArrive[client]; ok && la.Tx == tx {
		return
	}
	delete(cs.taggedInserts, tx)
}

// liveShadows reports whether any prepared shadow record of the
// transaction survives in a replayed table.
func (cs *convergenceState) liveShadows(tx string) bool { return cs.shadowCount[tx] > 0 }

// entries counts the replayed state held, for memory observability.
func (cs *convergenceState) entries() int {
	n := len(cs.finalHost) + len(cs.lastArrive)
	for _, t := range cs.tables {
		n += len(t)
	}
	for _, ins := range cs.taggedInserts {
		n += len(ins)
	}
	return n
}

// violations inspects the replayed final state: no shadow configuration
// survives, no entry points at a client copy the client has departed from,
// and each moved client's filters are present at its final host. The crash
// relaxations are documented on checkConvergence.
func (cs *convergenceState) violations(run int64, crashed, stillDown, crashedTx map[string]bool) []Violation {
	var out []Violation

	// No prepared shadow configuration may survive the run.
	for k, t := range cs.tables {
		if stillDown[k.site] {
			continue
		}
		for id, e := range t {
			if isShadow(id) && !crashedTx[txOfShadow(id)] {
				out = append(out, Violation{
					Run: run, Check: "convergence", Site: k.site, Ref: id, Client: e.client, Tx: txOfShadow(id),
					Detail: fmt.Sprintf("prepared shadow record survived in the %s", strings.ToUpper(k.table)),
				})
			}
		}
	}

	// No entry may point at a client copy the client has departed from.
	for k, t := range cs.tables {
		if stillDown[k.site] {
			continue
		}
		for id, e := range t {
			c, host, ok := splitClientNode(e.lastHop)
			if !ok {
				continue
			}
			final := cs.finalHost[c].Site
			if final != "" && host != final && !crashed[host] && !crashed[final] {
				out = append(out, Violation{
					Run: run, Check: "convergence", Site: k.site, Ref: id, Client: c,
					Detail: fmt.Sprintf("orphaned %s entry points at abandoned copy %s (client now at %s)",
						strings.ToUpper(k.table), e.lastHop, final),
				})
			}
		}
	}

	// The filters the client's final committed movement re-homed must be
	// present at the final host (unless the client retracted them itself).
	for c, arrive := range cs.lastArrive {
		site := arrive.Site
		if crashed[site] {
			// Ever crashed, even if restarted: the arriving client's copy
			// died with the container and is not resurrected, so its filters
			// are legitimately unsubscribed rather than present.
			continue
		}
		expected := make(map[string]string) // base id -> table
		for _, ins := range cs.taggedInserts[arrive.Tx] {
			if ins.Site != site || ins.Client != c || ins.To != clientNode(c, site) {
				continue
			}
			table := "srt"
			if ins.Kind == journal.KindPRTInsert {
				table = "prt"
			}
			expected[baseID(ins.Ref)] = table
		}
		for base, table := range expected {
			k := tableKey{site, table}
			if cs.untaggedRemoved[k][base] {
				continue
			}
			found := false
			for id, e := range cs.tables[k] {
				if baseID(id) == base && e.lastHop == clientNode(c, site) {
					found = true
					break
				}
			}
			if !found {
				out = append(out, Violation{
					Run: run, Check: "convergence", Site: site, Ref: base, Client: c, Tx: arrive.Tx,
					Detail: fmt.Sprintf("filter missing from the %s at the client's final host", strings.ToUpper(table)),
				})
			}
		}
	}
	sortViolations(out)
	return out
}
