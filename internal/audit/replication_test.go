package audit

import (
	"fmt"
	"strings"
	"testing"

	"padres/internal/journal"
)

// takeoverRec builds a synthetic standby-takeover record as the replication
// agent journals it.
func takeoverRec(tx, client, site string, lam uint64, gen int, outcome string) journal.Record {
	return journal.Record{
		Run: 1, Lamport: lam, Site: site, Cat: journal.CatProtocol, Kind: "standby-takeover",
		Tx: tx, Client: client, Detail: fmt.Sprintf("gen=%d outcome=%s", gen, outcome),
	}
}

// decisionRec builds a synthetic replica-decision record.
func decisionRec(tx, client, site string, lam uint64, gen int, outcome, from string) journal.Record {
	return journal.Record{
		Run: 1, Lamport: lam, Site: site, Cat: journal.CatProtocol, Kind: "replica-decision",
		Tx: tx, Client: client, Detail: fmt.Sprintf("outcome=%s gen=%d from=%s", outcome, gen, from),
	}
}

func TestReplicationCleanTakeover(t *testing.T) {
	recs := append([]journal.Record{cfg("protocol=reconfig covering=false timeout=100ms")},
		protoSteps("x1", "c1", 10)...)
	recs = append(recs,
		decisionRec("x1", "c1", "b2", 17, 0, "committed", "b1"),
		takeoverRec("x1", "c1", "b2", 25, 1, "committed"),
	)
	if got := violationsOf(Audit(recs), "replication"); len(got) != 0 {
		t.Fatalf("clean takeover flagged: %v", got)
	}
}

func TestReplicationTakeoverWithoutFence(t *testing.T) {
	recs := []journal.Record{
		cfg("timeout=100ms"),
		takeoverRec("x1", "c1", "b2", 20, 0, "aborted"),
	}
	got := violationsOf(Audit(recs), "replication")
	if len(got) != 1 || !strings.Contains(got[0].Detail, "without a fencing generation") {
		t.Fatalf("gen=0 takeover not flagged: %v", got)
	}
	if got[0].Site != "b2" {
		t.Fatalf("violation site = %q, want b2", got[0].Site)
	}
}

func TestReplicationDuplicateGeneration(t *testing.T) {
	recs := []journal.Record{
		cfg("timeout=100ms"),
		takeoverRec("x1", "c1", "b2", 20, 2, "aborted"),
		takeoverRec("x1", "c1", "b3", 21, 2, "aborted"),
	}
	got := violationsOf(Audit(recs), "replication")
	if len(got) != 1 || !strings.Contains(got[0].Detail, "share fencing generation 2") {
		t.Fatalf("duplicate generation not flagged: %v", got)
	}
}

func TestReplicationOutcomeDisagreement(t *testing.T) {
	recs := []journal.Record{
		cfg("timeout=100ms"),
		takeoverRec("x1", "c1", "b2", 20, 1, "committed"),
		takeoverRec("x1", "c1", "b3", 21, 2, "aborted"),
	}
	got := violationsOf(Audit(recs), "replication")
	if len(got) != 1 || !strings.Contains(got[0].Detail, "disagree on outcome (aborted vs committed)") {
		t.Fatalf("outcome disagreement not flagged: %v", got)
	}
}

func TestReplicationTakeoverContradictsResolution(t *testing.T) {
	recs := append([]journal.Record{cfg("timeout=100ms")}, protoSteps("x1", "c1", 10)...)
	recs = append(recs, takeoverRec("x1", "c1", "b2", 25, 1, "aborted"))
	got := violationsOf(Audit(recs), "replication")
	if len(got) != 1 || !strings.Contains(got[0].Detail, "resolved aborted but the transaction committed") {
		t.Fatalf("resolution mismatch not flagged: %v", got)
	}
}

func TestReplicationDecisionConflictAloneIsLegal(t *testing.T) {
	// A replica durably holding "committed" from a quorum round that failed,
	// superseded by the coordinator's abort, is legal as long as no takeover
	// acted on the stale record.
	recs := []journal.Record{
		cfg("timeout=100ms"),
		decisionRec("x1", "c1", "b2", 20, 0, "committed", "b1"),
		decisionRec("x1", "c1", "b2", 24, 0, "aborted", "b1"),
	}
	if got := violationsOf(Audit(recs), "replication"); len(got) != 0 {
		t.Fatalf("decision conflict without takeover flagged: %v", got)
	}
}

// TestReplicationStreamMatchesBatch feeds the same synthetic journal to the
// batch and streaming auditors and requires identical reports, including the
// replication findings.
func TestReplicationStreamMatchesBatch(t *testing.T) {
	var recs []journal.Record
	recs = append(recs, cfg("protocol=reconfig covering=false timeout=100ms"))
	recs = append(recs, protoSteps("x1", "c1", 10)...)
	recs = append(recs,
		decisionRec("x1", "c1", "b2", 17, 0, "committed", "b1"),
		takeoverRec("x1", "c1", "b2", 25, 1, "aborted"),    // contradicts the commit
		takeoverRec("x2", "c2", "b2", 30, 0, "aborted"),    // unfenced
		takeoverRec("x2", "c2", "b3", 31, 1, "aborted"),    // fine by itself
		takeoverRec("x3", "c3", "b2", 40, 3, "committed"),  // disagreement pair
		takeoverRec("x3", "c3", "b3", 41, 3, "aborted"),    // and a shared generation
	)

	batch := Audit(append([]journal.Record(nil), recs...))
	if n := len(violationsOf(batch, "replication")); n != 4 {
		t.Fatalf("batch replication violations = %d, want 4: %v", n, violationsOf(batch, "replication"))
	}

	s := NewStream(StreamOptions{})
	s.Ingest("tap", recs...)
	if d := DiffReports(batch, s.Finalize()); d != "" {
		t.Fatalf("batch and stream reports diverge:\n%s", d)
	}
}
