package audit

import (
	"strings"
	"testing"

	"padres/internal/journal"
)

// rec builds a synthetic journal record for check tests.
func rec(cat journal.Category, kind, site string, lam uint64, tx, client, ref, to string) journal.Record {
	return journal.Record{
		Run: 1, Lamport: lam, Site: site, Cat: cat, Kind: kind,
		Tx: tx, Client: client, Ref: ref, To: to,
	}
}

func cfg(detail string) journal.Record {
	return journal.Record{Run: 1, Site: "journal", Cat: journal.CatMeta, Kind: journal.KindRunConfig, Detail: detail}
}

// protoSteps builds a full successful 3PC conversation for tx/client with
// consecutive Lamport stamps starting at lam.
func protoSteps(tx, client string, lam uint64) []journal.Record {
	kinds := []struct{ kind, site string }{
		{"move-requested", "b1"},
		{"negotiate-sent", "b1"},
		{"negotiate-received", "b3"},
		{"approve-sent", "b3"},
		{"approve-received", "b1"},
		{"state-sent", "b1"},
		{"state-received", "b3"},
		{"ack-sent", "b3"},
		{"ack-received", "b1"},
		{"committed", "b1"},
	}
	out := make([]journal.Record, 0, len(kinds))
	for i, k := range kinds {
		out = append(out, rec(journal.CatProtocol, k.kind, k.site, lam+uint64(i), tx, client, "", ""))
	}
	return out
}

func violationsOf(rep *Report, check string) []Violation {
	var out []Violation
	for _, v := range rep.Violations() {
		if v.Check == check {
			out = append(out, v)
		}
	}
	return out
}

func TestPhaseOrderClean(t *testing.T) {
	recs := append([]journal.Record{cfg("protocol=reconfig covering=false timeout=0s")},
		protoSteps("x1", "c1", 10)...)
	rep := Audit(recs)
	if !rep.Clean() {
		t.Fatalf("clean conversation flagged: %v", rep.Violations())
	}
	if rep.Runs[0].Committed != 1 || rep.Runs[0].Txs != 1 {
		t.Fatalf("run summary = %+v", rep.Runs[0])
	}
}

func TestPhaseOrderInversion(t *testing.T) {
	steps := protoSteps("x1", "c1", 10)
	// Swap the stamps of state-sent and state-received: the receive now
	// precedes the send causally, which is illegal.
	steps[5].Lamport, steps[6].Lamport = steps[6].Lamport, steps[5].Lamport
	recs := append([]journal.Record{cfg("timeout=0s")}, steps...)
	got := violationsOf(Audit(recs), "phase-order")
	if len(got) == 0 {
		t.Fatal("phase inversion not flagged")
	}
	if !strings.Contains(got[0].Detail, "state-received observed before state-sent") {
		t.Fatalf("unexpected detail: %s", got[0].Detail)
	}
}

func TestPhaseOrderUnresolved(t *testing.T) {
	steps := protoSteps("x1", "c1", 10)[:4] // stops after approve-sent
	recs := append([]journal.Record{cfg("timeout=0s")}, steps...)
	rep := Audit(recs)
	got := violationsOf(rep, "phase-order")
	if len(got) != 1 || !strings.Contains(got[0].Detail, "never resolved") {
		t.Fatalf("unresolved tx not flagged: %v", got)
	}
	if rep.Runs[0].Unresolved != 1 {
		t.Fatalf("unresolved count = %d", rep.Runs[0].Unresolved)
	}
}

func TestPhaseOrderTimeoutUnderBlockingEngine(t *testing.T) {
	recs := []journal.Record{
		cfg("protocol=reconfig covering=false timeout=0s"),
		rec(journal.CatProtocol, "move-requested", "b1", 1, "x1", "c1", "", ""),
		rec(journal.CatProtocol, "negotiate-sent", "b1", 2, "x1", "c1", "", ""),
		rec(journal.CatProtocol, "source-timeout", "b1", 3, "x1", "c1", "", ""),
		rec(journal.CatProtocol, "abort-sent", "b1", 4, "x1", "c1", "", ""),
		rec(journal.CatProtocol, "aborted", "b1", 5, "x1", "c1", "", ""),
	}
	got := violationsOf(Audit(recs), "phase-order")
	found := false
	for _, v := range got {
		if strings.Contains(v.Detail, "blocking engine recorded a source-timeout") {
			found = true
		}
	}
	if !found {
		t.Fatalf("blocking-engine timeout not flagged: %v", got)
	}

	// The same conversation under the non-blocking engine is legal.
	recs[0] = cfg("protocol=reconfig covering=false timeout=2s")
	if got := violationsOf(Audit(recs), "phase-order"); len(got) != 0 {
		t.Fatalf("non-blocking timeout flagged: %v", got)
	}
}

func TestDeliveryExactlyOnce(t *testing.T) {
	base := []journal.Record{
		cfg("timeout=0s"),
		rec(journal.CatBroker, journal.KindDeliver, "b2", 5, "", "c1", "p-p1", "c1@b2"),
		rec(journal.CatClient, journal.KindClientDeliver, "c1", 6, "", "c1", "p-p1", ""),
	}
	if rep := Audit(append([]journal.Record{}, base...)); !rep.Clean() {
		t.Fatalf("clean delivery flagged: %v", rep.Violations())
	}

	// A second queueing of the same publication is a duplicate.
	dup := append(append([]journal.Record{}, base...),
		rec(journal.CatClient, journal.KindClientDeliver, "c1", 9, "", "c1", "p-p1", ""))
	got := violationsOf(Audit(dup), "delivery")
	if len(got) != 1 || !strings.Contains(got[0].Detail, "2 times") {
		t.Fatalf("duplicate not flagged: %v", got)
	}

	// A broker deliver with no eventual queueing is a loss.
	lost := []journal.Record{
		cfg("timeout=0s"),
		rec(journal.CatBroker, journal.KindDeliver, "b2", 5, "", "c1", "p-p2", "c1@b2"),
	}
	got = violationsOf(Audit(lost), "delivery")
	if len(got) != 1 || !strings.Contains(got[0].Detail, "never entered") {
		t.Fatalf("loss not flagged: %v", got)
	}

	// Buffered then queued (a movement window) is clean.
	buffered := []journal.Record{
		cfg("timeout=0s"),
		rec(journal.CatClient, journal.KindShellBuffer, "b3", 5, "x1", "c1", "p-p3", ""),
		rec(journal.CatClient, journal.KindClientDeliver, "c1", 9, "", "c1", "p-p3", ""),
	}
	if rep := Audit(buffered); !rep.Clean() {
		t.Fatalf("buffered delivery flagged: %v", rep.Violations())
	}
}

func TestConvergenceShadowSurvives(t *testing.T) {
	recs := append([]journal.Record{cfg("timeout=0s")}, protoSteps("x1", "c1", 10)...)
	recs = append(recs,
		rec(journal.CatRouting, journal.KindPRTInsert, "b2", 12, "x1", "c1", "c1-s1~x1", "b3"))
	got := violationsOf(Audit(recs), "convergence")
	if len(got) != 1 || !strings.Contains(got[0].Detail, "shadow record survived") {
		t.Fatalf("surviving shadow not flagged: %v", got)
	}
	// Removing it before the end of the run is clean.
	recs = append(recs,
		rec(journal.CatRouting, journal.KindPRTRemove, "b2", 20, "x1", "c1", "c1-s1~x1", "b3"))
	if rep := Audit(recs); !rep.Clean() {
		t.Fatalf("promoted shadow flagged: %v", rep.Violations())
	}
}

func TestConvergenceOrphanAtSource(t *testing.T) {
	recs := []journal.Record{
		cfg("timeout=0s"),
		rec(journal.CatClient, journal.KindClientAttach, "b1", 1, "", "c1", "", ""),
		rec(journal.CatRouting, journal.KindPRTInsert, "b1", 2, "", "c1", "c1-s1", "c1@b1"),
	}
	recs = append(recs, protoSteps("x1", "c1", 10)...)
	recs = append(recs,
		// The client re-homed at b3 but the source entry was never removed.
		rec(journal.CatRouting, journal.KindPRTInsert, "b3", 18, "x1", "c1", "c1-s1", "c1@b3"),
		rec(journal.CatClient, journal.KindClientArrive, "b3", 19, "x1", "c1", "", ""),
	)
	got := violationsOf(Audit(recs), "convergence")
	if len(got) != 1 || !strings.Contains(got[0].Detail, "orphaned PRT entry") {
		t.Fatalf("orphan not flagged: %v", got)
	}
	// Retracting the stale source entry makes the run clean.
	recs = append(recs,
		rec(journal.CatRouting, journal.KindPRTRemove, "b1", 20, "x1", "c1", "c1-s1", "c1@b1"))
	if rep := Audit(recs); !rep.Clean() {
		t.Fatalf("converged run flagged: %v", rep.Violations())
	}
}

func TestConvergenceMissingAtTarget(t *testing.T) {
	recs := append([]journal.Record{cfg("timeout=0s")}, protoSteps("x1", "c1", 10)...)
	recs = append(recs,
		// The movement inserted the filter at the target, the client
		// arrived, but something later removed it under the tx tag.
		rec(journal.CatRouting, journal.KindPRTInsert, "b3", 17, "x1", "c1", "c1-s1", "c1@b3"),
		rec(journal.CatClient, journal.KindClientArrive, "b3", 18, "x1", "c1", "", ""),
		rec(journal.CatRouting, journal.KindPRTRemove, "b3", 21, "x1", "c1", "c1-s1", "c1@b3"),
	)
	got := violationsOf(Audit(recs), "convergence")
	if len(got) != 1 || !strings.Contains(got[0].Detail, "missing from the PRT") {
		t.Fatalf("missing filter not flagged: %v", got)
	}
	// A client-issued (untagged) retraction excuses the absence.
	recs[len(recs)-1].Tx = ""
	if rep := Audit(recs); !rep.Clean() {
		t.Fatalf("client-retracted filter flagged: %v", rep.Violations())
	}
}

func TestAtomicityAbortRollsBack(t *testing.T) {
	abortSteps := []journal.Record{
		cfg("timeout=0s"),
		rec(journal.CatProtocol, "move-requested", "b1", 1, "x1", "c1", "", ""),
		rec(journal.CatProtocol, "negotiate-sent", "b1", 2, "x1", "c1", "", ""),
		rec(journal.CatProtocol, "negotiate-received", "b3", 3, "x1", "c1", "", ""),
		rec(journal.CatProtocol, "approve-sent", "b3", 4, "x1", "c1", "", ""),
		rec(journal.CatRouting, journal.KindPRTInsert, "b3", 5, "x1", "c1", "c1-s1~x1", "c1@b3"),
		rec(journal.CatProtocol, "abort-received", "b1", 8, "x1", "c1", "", ""),
		rec(journal.CatClient, journal.KindClientState, "b1", 9, "", "c1", "", ""),
		rec(journal.CatProtocol, "aborted", "b1", 10, "x1", "c1", "", ""),
	}
	abortSteps[7].Detail = "pause_move->started"

	// Without the rollback remove, the abort leaked prepared state.
	got := violationsOf(Audit(append([]journal.Record{}, abortSteps...)), "atomicity")
	if len(got) != 1 || !strings.Contains(got[0].Detail, "left behind") {
		t.Fatalf("leaked prepare not flagged: %v", got)
	}

	// With the rollback remove the abort is atomic.
	clean := append(append([]journal.Record{}, abortSteps...),
		rec(journal.CatRouting, journal.KindPRTRemove, "b3", 11, "x1", "c1", "c1-s1~x1", "c1@b3"))
	if got := violationsOf(Audit(clean), "atomicity"); len(got) != 0 {
		t.Fatalf("atomic abort flagged: %v", got)
	}
}

func TestAtomicityClientNotResumed(t *testing.T) {
	recs := []journal.Record{
		cfg("timeout=0s"),
		rec(journal.CatProtocol, "move-requested", "b1", 1, "x1", "c1", "", ""),
		rec(journal.CatProtocol, "negotiate-sent", "b1", 2, "x1", "c1", "", ""),
		rec(journal.CatProtocol, "reject-received", "b1", 5, "x1", "c1", "", ""),
		rec(journal.CatProtocol, "aborted", "b1", 6, "x1", "c1", "", ""),
	}
	got := violationsOf(Audit(recs), "atomicity")
	if len(got) != 1 || !strings.Contains(got[0].Detail, "did not return to the started state") {
		t.Fatalf("unresumed client not flagged: %v", got)
	}
}

func TestMultiRunIsolation(t *testing.T) {
	// The same tx ID in two runs must be audited independently: run 1
	// commits cleanly, run 2 leaves it unresolved.
	run1 := append([]journal.Record{cfg("timeout=0s")}, protoSteps("x1", "c1", 10)...)
	run2 := []journal.Record{
		{Run: 2, Site: "journal", Cat: journal.CatMeta, Kind: journal.KindRunConfig, Detail: "timeout=0s"},
		{Run: 2, Lamport: 1, Site: "b1", Cat: journal.CatProtocol, Kind: "move-requested", Tx: "x1", Client: "c1"},
		{Run: 2, Lamport: 2, Site: "b1", Cat: journal.CatProtocol, Kind: "negotiate-sent", Tx: "x1", Client: "c1"},
	}
	rep := Audit(append(run1, run2...))
	if len(rep.Runs) != 2 {
		t.Fatalf("runs = %d", len(rep.Runs))
	}
	if !rep.Runs[0].Clean() {
		t.Fatalf("run 1 flagged: %v", rep.Runs[0].Violations)
	}
	if rep.Runs[1].Clean() || rep.Runs[1].Unresolved != 1 {
		t.Fatalf("run 2 = %+v", rep.Runs[1])
	}
}

func TestTimeline(t *testing.T) {
	recs := append([]journal.Record{cfg("timeout=0s")}, protoSteps("x1", "c1", 10)...)
	recs = append(recs, protoSteps("x2", "c2", 30)...)
	tl := Timeline(recs, 1, "x1")
	if len(tl) != 10 {
		t.Fatalf("timeline records = %d, want 10", len(tl))
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].Lamport <= tl[i-1].Lamport {
			t.Fatalf("timeline not causally ordered at %d", i)
		}
	}
	if tl[0].Kind != "move-requested" || tl[9].Kind != "committed" {
		t.Fatalf("timeline endpoints = %s, %s", tl[0].Kind, tl[9].Kind)
	}
}

func TestBaseID(t *testing.T) {
	for in, want := range map[string]string{
		"c1-s1":          "c1-s1",
		"c1-s1~mv-b1-x1": "c1-s1",
		"c1-s1#mv-b1-x1": "c1-s1",
		"c1-s1#a~b":      "c1-s1", // both qualifiers stripped
	} {
		if got := baseID(in); got != want {
			t.Errorf("baseID(%q) = %q, want %q", in, got, want)
		}
	}
}
