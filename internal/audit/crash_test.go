package audit

import (
	"strings"
	"testing"

	"padres/internal/journal"
)

func crashRec(site string, lam uint64) journal.Record {
	return journal.Record{
		Run: 1, Lamport: lam, Site: site,
		Cat: journal.CatFailure, Kind: journal.KindBrokerCrash,
	}
}

// TestCrashExcusesUnresolvedTx: a transaction whose source coordinator
// crash-stopped mid-protocol may legally never resolve; the same journal
// without the crash record is a violation.
func TestCrashExcusesUnresolvedTx(t *testing.T) {
	steps := []journal.Record{
		cfg("timeout=200ms"),
		rec(journal.CatProtocol, "move-requested", "b1", 1, "x1", "c1", "", ""),
		rec(journal.CatProtocol, "negotiate-sent", "b1", 2, "x1", "c1", "", ""),
		rec(journal.CatProtocol, "negotiate-received", "b3", 3, "x1", "c1", "", ""),
		rec(journal.CatProtocol, "approve-sent", "b3", 4, "x1", "c1", "", ""),
	}
	rep := Audit(append([]journal.Record{}, steps...))
	if rep.Clean() {
		t.Fatal("unresolved transaction without a crash passed the audit")
	}
	if rep.Runs[0].Unresolved != 1 {
		t.Fatalf("Unresolved = %d, want 1", rep.Runs[0].Unresolved)
	}

	rep = Audit(append(append([]journal.Record{}, steps...), crashRec("b1", 5)))
	if !rep.Clean() {
		t.Fatalf("crash-interrupted transaction flagged: %v", rep.Violations())
	}
	run := rep.Runs[0]
	if run.CrashInterrupted != 1 || run.Unresolved != 0 {
		t.Fatalf("CrashInterrupted = %d, Unresolved = %d, want 1, 0", run.CrashInterrupted, run.Unresolved)
	}
	if len(run.CrashedSites) != 1 || run.CrashedSites[0] != "b1" {
		t.Fatalf("CrashedSites = %v, want [b1]", run.CrashedSites)
	}
}

// TestCrashExcusesStrandedState: prepared shadows at a live target whose
// source coordinator crashed, stub-evidenced publications at the dead site,
// and unremoved tagged inserts at the dead site are all crash consequences.
func TestCrashExcusesStrandedState(t *testing.T) {
	recs := []journal.Record{
		cfg("timeout=200ms"),
		rec(journal.CatProtocol, "move-requested", "b1", 1, "x1", "c1", "", ""),
		rec(journal.CatProtocol, "negotiate-sent", "b1", 2, "x1", "c1", "", ""),
		rec(journal.CatProtocol, "negotiate-received", "b3", 3, "x1", "c1", "", ""),
		// Prepared shadow at the live target b3, never cleaned up because b1
		// died before sending the next phase.
		rec(journal.CatRouting, journal.KindPRTInsert, "b3", 4, "x1", "c1", "c1-s1~x1", "c1@b3"),
		// A publication the dead container evidenced but never queued.
		rec(journal.CatClient, journal.KindDeliver, "b1", 5, "", "c1", "p9", ""),
		crashRec("b1", 6),
	}
	rep := Audit(recs)
	if !rep.Clean() {
		t.Fatalf("crash consequences flagged: %v", rep.Violations())
	}
}

// TestCrashNeverExcusesDuplicates: duplicate application-queue delivery is
// a safety violation regardless of crashes.
func TestCrashNeverExcusesDuplicates(t *testing.T) {
	recs := []journal.Record{
		cfg("timeout=200ms"),
		rec(journal.CatClient, journal.KindDeliver, "b1", 1, "", "c1", "p1", ""),
		rec(journal.CatClient, journal.KindClientDeliver, "b1", 2, "", "c1", "p1", ""),
		rec(journal.CatClient, journal.KindClientDeliver, "b1", 3, "", "c1", "p1", ""),
		crashRec("b1", 4),
	}
	rep := Audit(recs)
	if rep.Clean() {
		t.Fatal("duplicate delivery excused by a crash")
	}
	found := false
	for _, v := range rep.Violations() {
		if strings.Contains(v.Detail, "entered the application queue 2 times") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing duplicate violation: %v", rep.Violations())
	}
}

// TestCrashNeverExcusesDoubleResolution: committed and aborted on one
// transaction stays fatal even when its coordinator crashed afterwards.
func TestCrashNeverExcusesDoubleResolution(t *testing.T) {
	recs := []journal.Record{
		cfg("timeout=200ms"),
		rec(journal.CatProtocol, "move-requested", "b1", 1, "x1", "c1", "", ""),
		rec(journal.CatProtocol, "committed", "b1", 2, "x1", "c1", "", ""),
		rec(journal.CatProtocol, "aborted", "b1", 3, "x1", "c1", "", ""),
		crashRec("b1", 4),
	}
	rep := Audit(recs)
	if rep.Clean() {
		t.Fatal("double resolution excused by a crash")
	}
}
