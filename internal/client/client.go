// Package client implements the pub/sub stub layer of a mobile client
// (Sec. 3.2): the component that interfaces application logic with a
// broker, manages the client's movement states (Fig. 4), queues commands
// issued while a movement is in progress, and merges — exactly once — the
// notifications received at the source and target brokers across a move.
package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"padres/internal/message"
	"padres/internal/predicate"
	"padres/internal/sim"
)

// State is a client state from the paper's Fig. 4.
type State int

// Client states. A stationary connected client is Started. During a
// movement the source copy walks Started → PauseMove → PrepareStop →
// Cleaned (or back to Started on abort), while the target copy walks Init →
// Created → Started.
const (
	StateInit State = iota + 1
	StateCreated
	StateStarted
	StatePauseOper
	StatePauseMove
	StatePrepareStop
	StateCleaned
)

var stateNames = map[State]string{
	StateInit:        "init",
	StateCreated:     "created",
	StateStarted:     "started",
	StatePauseOper:   "pause_oper",
	StatePauseMove:   "pause_move",
	StatePrepareStop: "prepare_stop",
	StateCleaned:     "cleaned",
}

// String returns the state name.
func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Errors reported by client operations.
var (
	ErrNotStarted  = errors.New("client is not started")
	ErrMoving      = errors.New("client movement already in progress")
	ErrClosed      = errors.New("client is closed")
	ErrUnknownSub  = errors.New("unknown subscription")
	ErrUnknownAdv  = errors.New("unknown advertisement")
	ErrSameBroker  = errors.New("target broker equals current broker")
	ErrNoContainer = errors.New("client has no mobility container")
)

// Mover is implemented by the mobile container hosting the client; it
// executes the movement protocol on the client's behalf.
type Mover interface {
	// RequestMove starts a movement transaction toward the target broker
	// and returns a channel that yields the transaction outcome once.
	RequestMove(c *Client, target message.BrokerID) (<-chan error, error)
}

// Sender carries a client-issued message into the client's current broker.
// The container wires it to the co-located broker's inbox, so commands are
// ordered with the broker's other processing.
type Sender func(from message.NodeID, m message.Message)

// StateObserver is notified of every state transition of the client's
// movement state machine (Fig. 4). Observers run with the client's lock
// held: they must not block and must not call back into the client.
type StateObserver func(id message.ClientID, from, to State, at time.Time)

// DeliveryOutcome classifies what the stub did with a notification.
type DeliveryOutcome int

// Delivery outcomes.
const (
	// DeliveryQueued: the publication entered the application queue (first
	// and only time the application sees it).
	DeliveryQueued DeliveryOutcome = iota + 1
	// DeliveryDuplicate: suppressed by the stub's seen-set; the publication
	// had already been queued, typically via the other copy of a moving
	// client during the dual-configuration window.
	DeliveryDuplicate
	// DeliveryBuffered: parked in the transfer buffer while the client is
	// stopping; it accompanies the movement's state-transfer message.
	DeliveryBuffered
)

// String returns the outcome name.
func (o DeliveryOutcome) String() string {
	switch o {
	case DeliveryQueued:
		return "queued"
	case DeliveryDuplicate:
		return "duplicate"
	case DeliveryBuffered:
		return "buffered"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// DeliveryObserver is notified of every notification handed to the stub and
// what became of it. This is the system's app-level exactly-once point: a
// publication with outcome DeliveryQueued reaches the application exactly
// once. Observers run with the client's lock held: they must not block and
// must not call back into the client.
type DeliveryObserver func(id message.ClientID, pub message.PubID, outcome DeliveryOutcome)

// Client is the pub/sub stub of one (mobile) application client.
type Client struct {
	id  message.ClientID
	gen *message.IDGen
	// clk stamps state-transition observations; the hosting container sets
	// it so simulated clients report virtual times. Defaults to the wall
	// clock.
	clk sim.Clock

	mu       sync.Mutex
	cond     *sync.Cond
	state    State
	stateObs StateObserver
	delivObs DeliveryObserver
	broker   message.BrokerID
	node     message.NodeID
	mover    Mover
	send     Sender
	subs     map[message.SubID]*predicate.Filter
	advs     map[message.AdvID]*predicate.Filter
	seen     map[message.PubID]bool
	queue    []message.Publish // app-facing notification queue
	transfer []message.Publish // notifications buffered during a move
	pending  []message.Message // commands queued while not started
	closed   bool
}

// New creates a client stub in state Init. Containers call Attach to home
// it at a broker and start it.
func New(id message.ClientID) *Client {
	c := &Client{
		id:    id,
		gen:   message.NewIDGen(string(id)),
		clk:   sim.Wall,
		state: StateInit,
		subs:  make(map[message.SubID]*predicate.Filter),
		advs:  make(map[message.AdvID]*predicate.Filter),
		seen:  make(map[message.PubID]bool),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// ID returns the client identifier.
func (c *Client) ID() message.ClientID { return c.id }

// State returns the current movement state.
func (c *Client) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Broker returns the broker the client is currently homed at.
func (c *Client) Broker() message.BrokerID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broker
}

// Node returns the client's current location-qualified transport identity.
func (c *Client) Node() message.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.node
}

// SetMover installs the mobility container responsible for this client.
func (c *Client) SetMover(m Mover) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mover = m
}

// SetStateObserver installs (or, with nil, removes) the transition
// observer. The telemetry layer uses it to log and trace the client state
// machine alongside the coordinator's movement spans.
func (c *Client) SetStateObserver(obs StateObserver) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stateObs = obs
}

// setStateLocked performs a state transition and notifies the observer.
func (c *Client) setStateLocked(s State) {
	if s == c.state {
		return
	}
	from := c.state
	c.state = s
	if c.stateObs != nil {
		c.stateObs(c.id, from, s, c.clk.Now())
	}
}

// SetClock points the client's observation timestamps at clk (nil resets
// to the wall clock). Containers call it when homing a client so simulated
// runs stamp virtual time.
func (c *Client) SetClock(clk sim.Clock) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clk = sim.Or(clk)
}

// SetDeliveryObserver installs (or, with nil, removes) the notification
// observer. The flight recorder uses it to journal every queue, duplicate
// suppression, and buffering decision.
func (c *Client) SetDeliveryObserver(obs DeliveryObserver) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.delivObs = obs
}

// SetSender installs the path from the client into its current broker.
func (c *Client) SetSender(s Sender) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.send = s
}

// DeliverLocal receives one notification from the co-located broker.
// Depending on the movement state, it goes to the application queue or to
// the transfer buffer that accompanies the movement transaction.
func (c *Client) DeliverLocal(pub message.Publish) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state {
	case StatePauseMove, StatePrepareStop:
		// Buffered for the state-transfer message; duplicates are resolved
		// at merge time.
		c.transfer = append(c.transfer, pub)
		if c.delivObs != nil {
			c.delivObs(c.id, pub.ID, DeliveryBuffered)
		}
	default:
		c.enqueueLocked(pub)
	}
}

// enqueueLocked appends a notification to the application queue exactly
// once per publication ID.
func (c *Client) enqueueLocked(pub message.Publish) {
	if c.seen[pub.ID] {
		if c.delivObs != nil {
			c.delivObs(c.id, pub.ID, DeliveryDuplicate)
		}
		return
	}
	c.seen[pub.ID] = true
	c.queue = append(c.queue, pub)
	if c.delivObs != nil {
		c.delivObs(c.id, pub.ID, DeliveryQueued)
	}
	c.cond.Broadcast()
}

// Receive blocks until a notification is available or the context is done.
func (c *Client) Receive(ctx context.Context) (message.Publish, error) {
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) == 0 {
		if c.closed {
			return message.Publish{}, ErrClosed
		}
		if ctx.Err() != nil {
			return message.Publish{}, ctx.Err()
		}
		c.cond.Wait()
	}
	pub := c.queue[0]
	c.queue = c.queue[1:]
	return pub, nil
}

// TryReceive returns a queued notification if one is available.
func (c *Client) TryReceive() (message.Publish, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return message.Publish{}, false
	}
	pub := c.queue[0]
	c.queue = c.queue[1:]
	return pub, true
}

// QueueLen returns the number of notifications waiting for the application.
func (c *Client) QueueLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// ReceivedIDs returns the set of publication IDs delivered to the
// application queue so far (used by the experiment harness to verify
// exactly-once delivery).
func (c *Client) ReceivedIDs() []message.PubID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]message.PubID, 0, len(c.seen))
	for id := range c.seen {
		out = append(out, id)
	}
	return out
}

// --- application operations -------------------------------------------------

// Subscribe installs a subscription. While a movement is in progress the
// command is queued and issued at the new broker after the move completes.
func (c *Client) Subscribe(f *predicate.Filter) (message.SubID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.operationalLocked(); err != nil {
		return "", err
	}
	id := message.SubID(c.gen.Next("s"))
	c.subs[id] = f
	c.issueLocked(message.Subscribe{ID: id, Client: c.id, Filter: f})
	return id, nil
}

// Unsubscribe retracts a subscription.
func (c *Client) Unsubscribe(id message.SubID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.operationalLocked(); err != nil {
		return err
	}
	if _, ok := c.subs[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSub, id)
	}
	delete(c.subs, id)
	c.issueLocked(message.Unsubscribe{ID: id, Client: c.id})
	return nil
}

// Advertise announces the publications this client will issue.
func (c *Client) Advertise(f *predicate.Filter) (message.AdvID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.operationalLocked(); err != nil {
		return "", err
	}
	id := message.AdvID(c.gen.Next("a"))
	c.advs[id] = f
	c.issueLocked(message.Advertise{ID: id, Client: c.id, Filter: f})
	return id, nil
}

// Unadvertise retracts an advertisement.
func (c *Client) Unadvertise(id message.AdvID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.operationalLocked(); err != nil {
		return err
	}
	if _, ok := c.advs[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownAdv, id)
	}
	delete(c.advs, id)
	c.issueLocked(message.Unadvertise{ID: id, Client: c.id})
	return nil
}

// Publish issues a publication. While moving, the publication is queued
// and issued at the new broker, preserving the isolation property that a
// client's output is independent of its movements.
func (c *Client) Publish(e predicate.Event) (message.PubID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.operationalLocked(); err != nil {
		return "", err
	}
	id := message.PubID(c.gen.Next("p"))
	c.issueLocked(message.Publish{ID: id, Client: c.id, Event: e.Clone()})
	return id, nil
}

// operationalLocked reports whether application commands may be accepted
// (immediately or queued).
func (c *Client) operationalLocked() error {
	if c.closed {
		return ErrClosed
	}
	switch c.state {
	case StateStarted, StatePauseOper, StatePauseMove, StatePrepareStop:
		return nil
	default:
		return fmt.Errorf("%w (state %s)", ErrNotStarted, c.state)
	}
}

// issueLocked sends a command to the current broker, or queues it while the
// client is not in the started state.
func (c *Client) issueLocked(m message.Message) {
	if c.state != StateStarted {
		c.pending = append(c.pending, m)
		return
	}
	c.sendLocked(m)
}

func (c *Client) sendLocked(m message.Message) {
	if c.send != nil {
		c.send(c.node, m)
	}
}

// Move relocates the client to the target broker with transactional
// guarantees. It blocks until the movement transaction commits or aborts.
func (c *Client) Move(ctx context.Context, target message.BrokerID) error {
	c.mu.Lock()
	mover := c.mover
	cur := c.broker
	c.mu.Unlock()
	if target == cur {
		return ErrSameBroker
	}
	if mover == nil {
		return ErrNoContainer
	}
	done, err := mover.RequestMove(c, target)
	if err != nil {
		return err
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Subs returns a snapshot of the installed subscriptions.
func (c *Client) Subs() map[message.SubID]*predicate.Filter {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[message.SubID]*predicate.Filter, len(c.subs))
	for id, f := range c.subs {
		out[id] = f
	}
	return out
}

// Advs returns a snapshot of the installed advertisements.
func (c *Client) Advs() map[message.AdvID]*predicate.Filter {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[message.AdvID]*predicate.Filter, len(c.advs))
	for id, f := range c.advs {
		out[id] = f
	}
	return out
}
