package client

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"padres/internal/message"
	"padres/internal/predicate"
)

// The client stub's state can be serialized into the MoveState message's
// AppState payload, which is how the paper's protocol actually ships a
// client between sites. In-process deployments short-circuit through a
// shared directory; across processes (the TCP deployment) the target
// coordinator reconstructs the stub from this serialized form.

// stubState is the serializable part of a client stub.
type stubState struct {
	ID      message.ClientID
	Subs    map[message.SubID]*predicate.Filter
	Advs    map[message.AdvID]*predicate.Filter
	Seen    []message.PubID
	Queue   []message.Publish
	Pending []message.Envelope
	IDCount uint64
}

// Serialize captures the stub's application-relevant state: installed
// filters, the exactly-once delivery history, undelivered notifications,
// queued commands, and the identifier counter. It is valid while the client
// is stopped for a movement (PauseMove or PrepareStop).
func (c *Client) Serialize() ([]byte, error) {
	message.RegisterGobTypes()
	c.mu.Lock()
	st := stubState{
		ID:      c.id,
		Subs:    make(map[message.SubID]*predicate.Filter, len(c.subs)),
		Advs:    make(map[message.AdvID]*predicate.Filter, len(c.advs)),
		Seen:    make([]message.PubID, 0, len(c.seen)),
		Queue:   append([]message.Publish(nil), c.queue...),
		IDCount: c.gen.Count(),
	}
	for id, f := range c.subs {
		st.Subs[id] = f
	}
	for id, f := range c.advs {
		st.Advs[id] = f
	}
	for id := range c.seen {
		st.Seen = append(st.Seen, id)
	}
	for _, m := range c.pending {
		st.Pending = append(st.Pending, message.Envelope{Msg: m})
	}
	c.mu.Unlock()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, fmt.Errorf("serialize client %s: %w", st.ID, err)
	}
	return buf.Bytes(), nil
}

// Deserialize reconstructs a client stub from its serialized state, in
// PauseMove state, ready for CompleteMove at the target broker.
func Deserialize(data []byte) (*Client, error) {
	message.RegisterGobTypes()
	var st stubState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("deserialize client state: %w", err)
	}
	c := New(st.ID)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.setStateLocked(StatePauseMove)
	for id, f := range st.Subs {
		c.subs[id] = f
	}
	for id, f := range st.Advs {
		c.advs[id] = f
	}
	for _, id := range st.Seen {
		c.seen[id] = true
	}
	c.queue = append(c.queue, st.Queue...)
	for _, env := range st.Pending {
		c.pending = append(c.pending, env.Msg)
	}
	c.gen.SetCount(st.IDCount)
	return c, nil
}
