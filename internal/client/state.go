package client

import (
	"fmt"
	"sort"

	"padres/internal/message"
	"padres/internal/predicate"
	"padres/internal/wire"
)

// The client stub's state can be serialized into the MoveState message's
// AppState payload, which is how the paper's protocol actually ships a
// client between sites. In-process deployments short-circuit through a
// shared directory; across processes (the TCP deployment) the target
// coordinator reconstructs the stub from this serialized form.
//
// The payload is the compact binary form (docs/PROTOCOL.md, "Wire codec"):
// a version byte, then the stub fields with map keys in sorted order so the
// same state always serializes to the same bytes.

// stateVersion is the client-state schema version.
const stateVersion = 1

// Serialize captures the stub's application-relevant state: installed
// filters, the exactly-once delivery history, undelivered notifications,
// queued commands, and the identifier counter. It is valid while the client
// is stopped for a movement (PauseMove or PrepareStop).
func (c *Client) Serialize() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	b := []byte{stateVersion}
	b = wire.AppendString(b, string(c.id))

	subIDs := make([]string, 0, len(c.subs))
	for id := range c.subs {
		subIDs = append(subIDs, string(id))
	}
	sort.Strings(subIDs)
	b = wire.AppendUvarint(b, uint64(len(subIDs)))
	for _, id := range subIDs {
		b = wire.AppendString(b, id)
		b = appendFilter(b, c.subs[message.SubID(id)])
	}

	advIDs := make([]string, 0, len(c.advs))
	for id := range c.advs {
		advIDs = append(advIDs, string(id))
	}
	sort.Strings(advIDs)
	b = wire.AppendUvarint(b, uint64(len(advIDs)))
	for _, id := range advIDs {
		b = wire.AppendString(b, id)
		b = appendFilter(b, c.advs[message.AdvID(id)])
	}

	seen := make([]string, 0, len(c.seen))
	for id := range c.seen {
		seen = append(seen, string(id))
	}
	sort.Strings(seen)
	b = wire.AppendUvarint(b, uint64(len(seen)))
	for _, id := range seen {
		b = wire.AppendString(b, id)
	}

	b = wire.AppendUvarint(b, uint64(len(c.queue)))
	for _, p := range c.queue {
		var err error
		if b, err = message.AppendMessage(b, p); err != nil {
			return nil, fmt.Errorf("serialize client %s: queued publication: %w", c.id, err)
		}
	}

	b = wire.AppendUvarint(b, uint64(len(c.pending)))
	for _, m := range c.pending {
		var err error
		if b, err = message.AppendMessage(b, m); err != nil {
			return nil, fmt.Errorf("serialize client %s: pending command: %w", c.id, err)
		}
	}

	b = wire.AppendUvarint(b, c.gen.Count())
	return b, nil
}

// Deserialize reconstructs a client stub from its serialized state, in
// PauseMove state, ready for CompleteMove at the target broker.
func Deserialize(data []byte) (*Client, error) {
	ver, b, err := wire.Byte(data)
	if err != nil {
		return nil, fmt.Errorf("deserialize client state: %w", err)
	}
	if ver != stateVersion {
		return nil, fmt.Errorf("deserialize client state: unsupported version %d", ver)
	}
	id, b, err := wire.String(b)
	if err != nil {
		return nil, fmt.Errorf("deserialize client state: %w", err)
	}

	c := New(message.ClientID(id))
	c.mu.Lock()
	defer c.mu.Unlock()
	c.setStateLocked(StatePauseMove)

	n, b, err := wire.Len(b)
	if err != nil {
		return nil, fmt.Errorf("deserialize client state: subs: %w", err)
	}
	for i := 0; i < n; i++ {
		var sid string
		var f *predicate.Filter
		if sid, f, b, err = readIDFilter(b); err != nil {
			return nil, fmt.Errorf("deserialize client state: sub %d: %w", i, err)
		}
		c.subs[message.SubID(sid)] = f
	}

	if n, b, err = wire.Len(b); err != nil {
		return nil, fmt.Errorf("deserialize client state: advs: %w", err)
	}
	for i := 0; i < n; i++ {
		var aid string
		var f *predicate.Filter
		if aid, f, b, err = readIDFilter(b); err != nil {
			return nil, fmt.Errorf("deserialize client state: adv %d: %w", i, err)
		}
		c.advs[message.AdvID(aid)] = f
	}

	if n, b, err = wire.Len(b); err != nil {
		return nil, fmt.Errorf("deserialize client state: seen: %w", err)
	}
	for i := 0; i < n; i++ {
		var pid string
		if pid, b, err = wire.String(b); err != nil {
			return nil, fmt.Errorf("deserialize client state: seen %d: %w", i, err)
		}
		c.seen[message.PubID(pid)] = true
	}

	if n, b, err = wire.Len(b); err != nil {
		return nil, fmt.Errorf("deserialize client state: queue: %w", err)
	}
	for i := 0; i < n; i++ {
		var m message.Message
		if m, b, err = message.ReadMessage(b); err != nil {
			return nil, fmt.Errorf("deserialize client state: queue %d: %w", i, err)
		}
		p, ok := m.(message.Publish)
		if !ok {
			return nil, fmt.Errorf("deserialize client state: queue %d: unexpected %s", i, m.Kind())
		}
		c.queue = append(c.queue, p)
	}

	if n, b, err = wire.Len(b); err != nil {
		return nil, fmt.Errorf("deserialize client state: pending: %w", err)
	}
	for i := 0; i < n; i++ {
		var m message.Message
		if m, b, err = message.ReadMessage(b); err != nil {
			return nil, fmt.Errorf("deserialize client state: pending %d: %w", i, err)
		}
		c.pending = append(c.pending, m)
	}

	count, b, err := wire.Uvarint(b)
	if err != nil {
		return nil, fmt.Errorf("deserialize client state: id counter: %w", err)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("deserialize client state: %d trailing bytes", len(b))
	}
	c.gen.SetCount(count)
	return c, nil
}

// appendFilter appends a nil-able filter with a presence byte.
func appendFilter(b []byte, f *predicate.Filter) []byte {
	if f == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	return f.AppendBinary(b)
}

func readIDFilter(b []byte) (string, *predicate.Filter, []byte, error) {
	id, b, err := wire.String(b)
	if err != nil {
		return "", nil, nil, err
	}
	present, b, err := wire.Byte(b)
	if err != nil {
		return "", nil, nil, err
	}
	if present == 0 {
		return id, nil, b, nil
	}
	f, b, err := predicate.ReadFilter(b)
	if err != nil {
		return "", nil, nil, err
	}
	return id, f, b, nil
}
