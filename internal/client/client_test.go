package client

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"padres/internal/message"
	"padres/internal/predicate"
)

// recorder captures messages the client sends to its broker.
type recorder struct {
	mu   sync.Mutex
	msgs []message.Message
}

func (r *recorder) sender() Sender {
	return func(from message.NodeID, m message.Message) {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.msgs = append(r.msgs, m)
	}
}

func (r *recorder) kinds() []message.Kind {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]message.Kind, len(r.msgs))
	for i, m := range r.msgs {
		out[i] = m.Kind()
	}
	return out
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs)
}

// fakeMover resolves every move immediately with a fixed outcome.
type fakeMover struct {
	err    error
	target message.BrokerID
	c      *Client
}

func (m *fakeMover) RequestMove(c *Client, target message.BrokerID) (<-chan error, error) {
	m.c = c
	m.target = target
	done := make(chan error, 1)
	done <- m.err
	return done, nil
}

func startedClient(t *testing.T) (*Client, *recorder) {
	t.Helper()
	c := New("c1")
	rec := &recorder{}
	c.SetSender(rec.sender())
	if err := c.Attach("b1"); err != nil {
		t.Fatal(err)
	}
	return c, rec
}

func TestLifecycleBasics(t *testing.T) {
	c := New("c1")
	if c.State() != StateInit {
		t.Fatalf("initial state = %s", c.State())
	}
	if err := c.Attach("b1"); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateStarted || c.Broker() != "b1" {
		t.Fatalf("after attach: %s at %s", c.State(), c.Broker())
	}
	if c.Node() != message.ClientNode("c1", "b1") {
		t.Errorf("node = %s", c.Node())
	}
	if err := c.Attach("b2"); err == nil {
		t.Error("second attach should fail")
	}
}

func TestSubscribeAdvertisePublish(t *testing.T) {
	c, rec := startedClient(t)
	f := predicate.MustParse("[x,>,0]")
	subID, err := c.Subscribe(f)
	if err != nil {
		t.Fatal(err)
	}
	advID, err := c.Advertise(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Publish(predicate.Event{"x": predicate.Number(1)}); err != nil {
		t.Fatal(err)
	}
	want := []message.Kind{message.KindSubscribe, message.KindAdvertise, message.KindPublish}
	got := rec.kinds()
	if len(got) != len(want) {
		t.Fatalf("sent %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sent %v, want %v", got, want)
		}
	}
	if len(c.Subs()) != 1 || c.Subs()[subID] == nil {
		t.Errorf("Subs() = %v", c.Subs())
	}
	if len(c.Advs()) != 1 || c.Advs()[advID] == nil {
		t.Errorf("Advs() = %v", c.Advs())
	}

	if err := c.Unsubscribe(subID); err != nil {
		t.Fatal(err)
	}
	if err := c.Unadvertise(advID); err != nil {
		t.Fatal(err)
	}
	if len(c.Subs()) != 0 || len(c.Advs()) != 0 {
		t.Error("entries not removed")
	}
	if err := c.Unsubscribe("nope"); !errors.Is(err, ErrUnknownSub) {
		t.Errorf("unknown unsubscribe = %v", err)
	}
	if err := c.Unadvertise("nope"); !errors.Is(err, ErrUnknownAdv) {
		t.Errorf("unknown unadvertise = %v", err)
	}
}

func TestOperationsBeforeAttach(t *testing.T) {
	c := New("c1")
	if _, err := c.Subscribe(predicate.MustParse("[x,>,0]")); !errors.Is(err, ErrNotStarted) {
		t.Errorf("subscribe before attach = %v", err)
	}
}

func TestDeliveryAndDedup(t *testing.T) {
	c, _ := startedClient(t)
	pub := message.Publish{ID: "p1", Event: predicate.Event{"x": predicate.Number(1)}}
	c.DeliverLocal(pub)
	c.DeliverLocal(pub) // duplicate dropped
	c.DeliverLocal(message.Publish{ID: "p2"})
	if c.QueueLen() != 2 {
		t.Fatalf("queue = %d, want 2", c.QueueLen())
	}
	got, ok := c.TryReceive()
	if !ok || got.ID != "p1" {
		t.Fatalf("TryReceive = %v, %v", got, ok)
	}
	ids := c.ReceivedIDs()
	if len(ids) != 2 {
		t.Errorf("ReceivedIDs = %v", ids)
	}
}

func TestReceiveBlocking(t *testing.T) {
	c, _ := startedClient(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.Receive(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Receive on empty queue = %v", err)
	}

	go func() {
		time.Sleep(10 * time.Millisecond)
		c.DeliverLocal(message.Publish{ID: "p1"})
	}()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	got, err := c.Receive(ctx2)
	if err != nil || got.ID != "p1" {
		t.Fatalf("Receive = %v, %v", got, err)
	}
}

func TestMoveStates(t *testing.T) {
	c, rec := startedClient(t)
	if err := c.BeginMove(); err != nil {
		t.Fatal(err)
	}
	if c.State() != StatePauseMove {
		t.Fatalf("state = %s", c.State())
	}
	if err := c.BeginMove(); !errors.Is(err, ErrMoving) {
		t.Errorf("double BeginMove = %v", err)
	}

	// Notifications divert to the transfer buffer while moving.
	c.DeliverLocal(message.Publish{ID: "m1"})
	if c.QueueLen() != 0 {
		t.Fatal("notification leaked to the app queue during a move")
	}
	// Commands are queued, not sent.
	before := rec.count()
	if _, err := c.Subscribe(predicate.MustParse("[y,>,0]")); err != nil {
		t.Fatal(err)
	}
	if rec.count() != before {
		t.Fatal("command sent while moving")
	}

	buffered, err := c.PrepareStop()
	if err != nil {
		t.Fatal(err)
	}
	if len(buffered) != 1 || buffered[0].ID != "m1" {
		t.Fatalf("buffered = %v", buffered)
	}
	if c.State() != StatePrepareStop {
		t.Fatalf("state = %s", c.State())
	}
	if _, err := c.PrepareStop(); err == nil {
		t.Error("second PrepareStop should fail")
	}

	// Complete at the target: buffered + shell merge exactly once, queued
	// commands flush.
	shell := []message.Publish{{ID: "m1"}, {ID: "m2"}}
	if err := c.CompleteMove("b9", buffered, shell); err != nil {
		t.Fatal(err)
	}
	if c.Broker() != "b9" || c.State() != StateStarted {
		t.Fatalf("after complete: %s at %s", c.State(), c.Broker())
	}
	if c.QueueLen() != 2 {
		t.Errorf("merged queue = %d, want 2 (m1 deduped)", c.QueueLen())
	}
	if rec.count() != before+1 {
		t.Errorf("pending commands not flushed: %d sends", rec.count()-before)
	}
}

func TestResumeAfterAbort(t *testing.T) {
	c, rec := startedClient(t)
	if err := c.BeginMove(); err != nil {
		t.Fatal(err)
	}
	c.DeliverLocal(message.Publish{ID: "m1"})
	if _, err := c.Publish(predicate.Event{"x": predicate.Number(1)}); err != nil {
		t.Fatal(err)
	}
	sendsBefore := rec.count()
	c.Resume()
	if c.State() != StateStarted || c.Broker() != "b1" {
		t.Fatalf("after resume: %s at %s", c.State(), c.Broker())
	}
	// The buffered notification is delivered locally and the queued
	// publish flushed.
	if c.QueueLen() != 1 {
		t.Errorf("queue = %d, want 1", c.QueueLen())
	}
	if rec.count() != sendsBefore+1 {
		t.Errorf("pending publish not flushed")
	}
	// Resume when not moving is a no-op.
	c.Resume()
}

func TestCompleteMoveRequiresMoving(t *testing.T) {
	c, _ := startedClient(t)
	if err := c.CompleteMove("b9", nil, nil); err == nil {
		t.Fatal("CompleteMove while started should fail")
	}
}

func TestMoveViaMover(t *testing.T) {
	c, _ := startedClient(t)
	ctx := context.Background()

	if err := c.Move(ctx, "b1"); !errors.Is(err, ErrSameBroker) {
		t.Errorf("move to same broker = %v", err)
	}
	cNoMover := New("c2")
	_ = cNoMover.Attach("b1")
	if err := cNoMover.Move(ctx, "b2"); !errors.Is(err, ErrNoContainer) {
		t.Errorf("move without container = %v", err)
	}

	m := &fakeMover{}
	c.SetMover(m)
	if err := c.Move(ctx, "b5"); err != nil {
		t.Fatalf("move = %v", err)
	}
	if m.target != "b5" {
		t.Errorf("mover got target %s", m.target)
	}

	m.err = errors.New("boom")
	if err := c.Move(ctx, "b6"); err == nil || err.Error() != "boom" {
		t.Errorf("move error = %v", err)
	}
}

func TestMoveContextCancelled(t *testing.T) {
	c, _ := startedClient(t)
	blocked := &blockingMover{started: make(chan struct{})}
	c.SetMover(blocked)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-blocked.started
		cancel()
	}()
	if err := c.Move(ctx, "b5"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled move = %v", err)
	}
}

type blockingMover struct {
	started chan struct{}
}

func (m *blockingMover) RequestMove(*Client, message.BrokerID) (<-chan error, error) {
	close(m.started)
	return make(chan error), nil
}

func TestRenameEntries(t *testing.T) {
	c, _ := startedClient(t)
	f := predicate.MustParse("[x,>,0]")
	subID, _ := c.Subscribe(f)
	advID, _ := c.Advertise(f)
	c.RenameEntries(
		map[message.SubID]message.SubID{subID: "new-sub"},
		map[message.AdvID]message.AdvID{advID: "new-adv"},
	)
	if _, ok := c.Subs()["new-sub"]; !ok {
		t.Error("subscription not renamed")
	}
	if _, ok := c.Advs()["new-adv"]; !ok {
		t.Error("advertisement not renamed")
	}
}

func TestEntriesSnapshotSorted(t *testing.T) {
	c, _ := startedClient(t)
	f := predicate.MustParse("[x,>,0]")
	for i := 0; i < 5; i++ {
		if _, err := c.Subscribe(f); err != nil {
			t.Fatal(err)
		}
	}
	subs, _ := c.EntriesSnapshot()
	for i := 1; i < len(subs); i++ {
		if subs[i-1].ID > subs[i].ID {
			t.Fatalf("snapshot not sorted: %v", subs)
		}
	}
}

func TestClose(t *testing.T) {
	c, _ := startedClient(t)
	c.DeliverLocal(message.Publish{ID: "p1"})
	c.Close()
	if c.State() != StateCleaned {
		t.Errorf("state after close = %s", c.State())
	}
	if _, err := c.Subscribe(predicate.MustParse("[x,>,0]")); !errors.Is(err, ErrClosed) {
		t.Errorf("subscribe after close = %v", err)
	}
	// Queued notifications remain readable; blocked Receives fail.
	if _, ok := c.TryReceive(); !ok {
		t.Error("queued notification lost on close")
	}
	ctx := context.Background()
	if _, err := c.Receive(ctx); !errors.Is(err, ErrClosed) {
		t.Errorf("Receive after close = %v", err)
	}
}

func TestStateString(t *testing.T) {
	if StateStarted.String() != "started" || State(99).String() != "state(99)" {
		t.Error("State.String wrong")
	}
}

func TestPauseOperations(t *testing.T) {
	c, rec := startedClient(t)
	if err := c.PauseOperations(); err != nil {
		t.Fatal(err)
	}
	if c.State() != StatePauseOper {
		t.Fatalf("state = %s", c.State())
	}
	// Commands queue; notifications still reach the application.
	if _, err := c.Publish(predicate.Event{"x": predicate.Number(1)}); err != nil {
		t.Fatal(err)
	}
	if rec.count() != 0 {
		t.Fatal("command sent while operations paused")
	}
	c.DeliverLocal(message.Publish{ID: "p1"})
	if c.QueueLen() != 1 {
		t.Fatal("notification blocked by operation pause")
	}
	// A movement cannot start while paused (started-only transition).
	if err := c.BeginMove(); err == nil {
		t.Fatal("BeginMove allowed from pause_oper")
	}
	if err := c.PauseOperations(); err == nil {
		t.Fatal("double pause allowed")
	}
	if err := c.ResumeOperations(); err != nil {
		t.Fatal(err)
	}
	if rec.count() != 1 {
		t.Fatalf("queued command not flushed: %d", rec.count())
	}
	if err := c.ResumeOperations(); err == nil {
		t.Fatal("resume while started allowed")
	}
}
