package client

import (
	"fmt"

	"padres/internal/message"
)

// This file contains the lifecycle operations invoked by the mobile
// container (the coordinator). They correspond to the client-side
// transitions of Fig. 4 and are not meant to be called by applications.

// Attach homes the client at a broker and starts it. Valid from Init (a
// fresh client) only; movements re-home clients through CompleteMove.
func (c *Client) Attach(b message.BrokerID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateInit {
		return fmt.Errorf("attach in state %s", c.state)
	}
	c.broker = b
	c.node = message.ClientNode(c.id, b)
	c.setStateLocked(StateStarted)
	return nil
}

// BeginMove transitions Started → PauseMove at the start of a movement
// transaction. Commands issued by the application are queued from here on,
// and incoming notifications divert to the transfer buffer.
func (c *Client) BeginMove() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.state != StateStarted {
		return fmt.Errorf("%w: state %s", ErrMoving, c.state)
	}
	c.setStateLocked(StatePauseMove)
	return nil
}

// PrepareStop transitions PauseMove → PrepareStop when the movement is
// approved, and returns a snapshot of the notifications buffered since
// BeginMove for the state-transfer message. The buffer is retained so that
// an abort can re-deliver it locally.
func (c *Client) PrepareStop() ([]message.Publish, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StatePauseMove {
		return nil, fmt.Errorf("prepare stop in state %s", c.state)
	}
	c.setStateLocked(StatePrepareStop)
	out := make([]message.Publish, len(c.transfer))
	copy(out, c.transfer)
	return out, nil
}

// Resume aborts the movement locally: the client returns to Started at its
// source broker, and the notifications buffered during the attempt are
// delivered to the application (exactly once). Queued commands flush to the
// current broker.
func (c *Client) Resume() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StatePauseMove && c.state != StatePrepareStop {
		return
	}
	c.setStateLocked(StateStarted)
	for _, pub := range c.transfer {
		c.enqueueLocked(pub)
	}
	c.transfer = nil
	c.flushPendingLocked()
}

// CompleteMove commits the movement: the client re-homes to the target
// broker, merges the transferred notifications with those the target shell
// buffered (deduplicating by publication ID), flushes queued commands at
// the new broker, and returns to Started.
//
// The transferred slice is the payload of the MoveState message (the
// notifications the source buffered); shell is what the target shell
// received while the movement was in flight.
func (c *Client) CompleteMove(target message.BrokerID, transferred, shell []message.Publish) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StatePauseMove && c.state != StatePrepareStop {
		return fmt.Errorf("complete move in state %s", c.state)
	}
	c.broker = target
	c.node = message.ClientNode(c.id, target)
	c.setStateLocked(StateStarted)
	for _, pub := range transferred {
		c.enqueueLocked(pub)
	}
	for _, pub := range shell {
		c.enqueueLocked(pub)
	}
	// The stub's own transfer buffer may hold notifications that raced the
	// handler swap at the target; per-ID deduplication makes merging it
	// unconditionally safe.
	for _, pub := range c.transfer {
		c.enqueueLocked(pub)
	}
	c.transfer = nil
	c.flushPendingLocked()
	return nil
}

// flushPendingLocked sends commands queued during the movement from the
// client's (possibly new) location, in order.
func (c *Client) flushPendingLocked() {
	for _, m := range c.pending {
		c.sendLocked(m)
	}
	c.pending = nil
}

// RenameEntries substitutes subscription and advertisement identifiers
// after an end-to-end movement re-issued them under fresh IDs.
func (c *Client) RenameEntries(subs map[message.SubID]message.SubID, advs map[message.AdvID]message.AdvID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for old, new_ := range subs {
		if f, ok := c.subs[old]; ok {
			delete(c.subs, old)
			c.subs[new_] = f
		}
	}
	for old, new_ := range advs {
		if f, ok := c.advs[old]; ok {
			delete(c.advs, old)
			c.advs[new_] = f
		}
	}
}

// EntriesSnapshot returns the client's current subscriptions and
// advertisements as movement message entries, sorted by ID.
func (c *Client) EntriesSnapshot() ([]message.SubEntry, []message.AdvEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	subs := make([]message.SubEntry, 0, len(c.subs))
	for id, f := range c.subs {
		subs = append(subs, message.SubEntry{ID: id, Filter: f})
	}
	advs := make([]message.AdvEntry, 0, len(c.advs))
	for id, f := range c.advs {
		advs = append(advs, message.AdvEntry{ID: id, Filter: f})
	}
	sortSubEntries(subs)
	sortAdvEntries(advs)
	return subs, advs
}

func sortSubEntries(s []message.SubEntry) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].ID < s[j-1].ID; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sortAdvEntries(s []message.AdvEntry) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].ID < s[j-1].ID; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Close marks the client cleaned; pending notifications remain readable
// until consumed, but blocked Receive calls return ErrClosed.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.setStateLocked(StateCleaned)
	c.cond.Broadcast()
}

// PauseOperations transitions Started → PauseOper (Fig. 4's application
// `pause`): commands issued by the application are queued, while
// notifications keep flowing. Unlike a movement pause, this is entirely
// client-local.
func (c *Client) PauseOperations() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.state != StateStarted {
		return fmt.Errorf("pause operations in state %s", c.state)
	}
	c.setStateLocked(StatePauseOper)
	return nil
}

// ResumeOperations transitions PauseOper → Started and flushes the queued
// commands in order.
func (c *Client) ResumeOperations() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StatePauseOper {
		return fmt.Errorf("resume operations in state %s", c.state)
	}
	c.setStateLocked(StateStarted)
	c.flushPendingLocked()
	return nil
}
