package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"padres/internal/client"
	"padres/internal/journal"
	"padres/internal/message"
	"padres/internal/metrics"
	"padres/internal/store"
)

// epochSep separates the stable part of a subscription/advertisement ID
// from the movement transaction under which the end-to-end protocol
// re-issued it. Using a dedicated separator keeps re-issued IDs from
// growing across repeated movements.
const epochSep = "#"

func epochBase(id string) string {
	if i := strings.Index(id, epochSep); i >= 0 {
		return id[:i]
	}
	return id
}

func epochID(id string, tx message.TxID) string {
	return epochBase(id) + epochSep + string(tx)
}

// --- target-side handlers ---------------------------------------------------

// onNegotiate processes message (1) at the target coordinator: admission
// control, client shell creation, and either hop-by-hop reconfiguration
// (via the approve message) or end-to-end re-subscription.
func (ct *Container) onNegotiate(m message.MoveNegotiate) {
	reply := func(msg message.Message) { _ = ct.cfg.Broker.SendControl(msg) }
	ct.emit(EventNegotiateReceived, m.Tx, m.Client, "")

	if ct.cfg.Admission != nil {
		if err := ct.cfg.Admission(m); err != nil {
			ct.emit(EventRejectSent, m.Tx, m.Client, err.Error())
			reply(message.MoveReject{MoveHeader: m.MoveHeader, Reason: err.Error()})
			return
		}
	}

	ct.mu.Lock()
	if ct.closed {
		ct.mu.Unlock()
		reply(message.MoveReject{MoveHeader: m.MoveHeader, Reason: "target container shut down"})
		return
	}
	if _, dup := ct.target[m.Tx]; dup {
		ct.mu.Unlock()
		return
	}
	ttx := &targetTx{
		tx:        m.Tx,
		clientID:  m.Client,
		source:    m.Source,
		shellNode: message.ClientNode(m.Client, ct.cfg.Broker.ID()),
	}
	ct.target[m.Tx] = ttx
	ct.mu.Unlock()

	// Create the client shell: a local identity at the target broker that
	// buffers notifications until the client state arrives. It must exist
	// before any routing for the client points here.
	ct.cfg.Broker.AttachClient(ttx.shellNode, ct.journalShellDeliver(ttx))

	approve := message.MoveApprove{MoveHeader: m.MoveHeader}

	switch ct.cfg.Protocol {
	case ProtocolReconfig:
		// The approve message carries the client's filters and performs
		// the routing reconfiguration at every broker along the path,
		// starting with this one.
		approve.Subs = m.Subs
		approve.Advs = m.Advs
		approve.Reconfigure = true
		ct.emit(EventApproveSent, m.Tx, m.Client, "reconfigure")
		_ = ct.cfg.Broker.SendControl(approve)
		ct.armTargetTimer(ttx)

	case ProtocolEndToEnd:
		// Re-issue the client's filters under fresh identifiers from the
		// target. The approval is only sent after the subscription
		// propagation has quiesced: the traditional protocol cannot
		// guarantee gapless delivery before the new routing state is in
		// place, and this wait is the dominant cost the paper measures.
		ttx.subIDMap = make(map[message.SubID]message.SubID, len(m.Subs))
		ttx.advIDMap = make(map[message.AdvID]message.AdvID, len(m.Advs))
		for _, se := range m.Subs {
			newID := message.SubID(epochID(string(se.ID), m.Tx))
			ttx.subIDMap[se.ID] = newID
			ct.cfg.Broker.Inject(ttx.shellNode, message.Subscribe{
				ID: newID, Client: m.Client, Filter: se.Filter, TxTag: m.Tx,
			})
		}
		for _, ae := range m.Advs {
			newID := message.AdvID(epochID(string(ae.ID), m.Tx))
			ttx.advIDMap[ae.ID] = newID
			ct.cfg.Broker.Inject(ttx.shellNode, message.Advertise{
				ID: newID, Client: m.Client, Filter: ae.Filter, TxTag: m.Tx,
			})
		}
		ct.spawn(func(ctx context.Context) {
			if err := ct.reg.AwaitTag(ctx, m.Tx); err != nil {
				return // shutdown; the transaction resolves via timeouts
			}
			ct.emit(EventApproveSent, m.Tx, m.Client, "end-to-end, propagation quiesced")
			_ = ct.cfg.Broker.SendControl(approve)
			ct.mu.Lock()
			if cur, ok := ct.target[m.Tx]; ok {
				ct.armTargetTimerLocked(cur)
			}
			ct.mu.Unlock()
		})
	}
}

// onState processes message (4) at the target coordinator: the client state
// has arrived. With replication on, the commit decision is replicated to a
// write quorum of the transaction's preference list before any effect of it
// is acted on — a decision no quorum holds is never acted on, so a standby
// that finds no record in a majority can safely conclude abort, and a
// quorum failure aborts the movement. When the replicas sit on the
// acknowledgement's own path (CommitPipelined), per-link FIFO enforces that
// ordering for free and the MoveAck departs immediately, with only the
// client start deferred to the quorum confirmation; otherwise the
// coordinator waits out the quorum round trip before sending anything.
func (ct *Container) onState(m message.MoveState) {
	ct.emit(EventStateReceived, m.Tx, m.Client, "")
	ct.mu.Lock()
	ttx, ok := ct.target[m.Tx]
	if ok && ttx.deciding {
		// A duplicate state transfer must not start a second quorum round.
		ct.mu.Unlock()
		return
	}
	if ok {
		ttx.deciding = true
	}
	ct.mu.Unlock()
	if !ok {
		// The transaction was aborted here (e.g. a timeout); tell the
		// source so it resumes the client.
		_ = ct.cfg.Broker.PersistDecision(m.MoveHeader, "target", store.PhaseAborted, false)
		_ = ct.cfg.Broker.SendControl(message.MoveAbort{
			MoveHeader:  m.MoveHeader,
			To:          m.Source,
			Reason:      "state transfer for unknown transaction",
			Reconfigure: ct.cfg.Protocol == ProtocolReconfig,
		})
		return
	}
	if ttx.timer != nil {
		ttx.timer.Stop()
	}

	c := ct.cfg.Directory.Get(m.Client)
	if c == nil && len(m.AppState) > 0 {
		// The client is not in this process (TCP deployment): reconstruct
		// its stub from the state payload.
		restored, err := client.Deserialize(m.AppState)
		if err == nil && restored.ID() == m.Client {
			c = restored
			ct.cfg.Directory.Put(c)
		}
	}
	if c == nil {
		// Unrecoverable inconsistency; abort both sides.
		ct.mu.Lock()
		delete(ct.target, m.Tx)
		ct.mu.Unlock()
		ct.teardownShell(ttx)
		_ = ct.cfg.Broker.PersistDecision(m.MoveHeader, "target", store.PhaseAborted, false)
		_ = ct.cfg.Broker.SendControl(message.MoveAbort{
			MoveHeader: m.MoveHeader, To: m.Source, Reason: "client not found", Reconfigure: ct.cfg.Protocol == ProtocolReconfig,
		})
		return
	}

	// The transaction stays in ct.target until the decision is settled, so
	// recovery queries arriving mid-quorum still see it as in flight and a
	// concurrent abort can still roll the preparation back.
	if ct.cfg.Broker.CommitPipelined(m.MoveHeader) {
		// Pipelined commit: the ReplicateDecision messages leave first, the
		// MoveAck second, on the same first-hop link — per-link FIFO and the
		// path replica's durable-append-before-forward discipline put the
		// decision at a full write quorum before the acknowledgement can
		// reach anyone who acts on it, so the round trip leaves the
		// movement's critical path. Only the client start (and the ack-sent
		// journal step, which must never precede a still-possible abort)
		// waits for the quorum confirmation; on quorum failure the
		// acknowledgement provably died on its first hop, committing no
		// routing reconfiguration anywhere, and the abort path below stays
		// sound.
		// The ack-sent stamp is reserved before the acknowledgement hits
		// the wire so the deferred record sorts causally ahead of the
		// source's ack-received, but it is only appended once the quorum
		// confirms — an ack-sent record must never precede a still-possible
		// abort.
		ackStamp := ct.reserveStamp()
		ct.cfg.Broker.ReplicateCommit(m.MoveHeader, func(ok bool) {
			if ok {
				if ct.attachCommit(m, ttx, c) {
					ct.emitStamped(ackStamp, EventAckSent, m.Tx, m.Client, "pipelined, quorum confirmed")
				}
				return
			}
			ct.quorumAbort(m, ttx)
		})
		_ = ct.cfg.Broker.SendControl(message.MoveAck{
			MoveHeader:  m.MoveHeader,
			Reconfigure: ct.cfg.Protocol == ProtocolReconfig,
		})
		return
	}
	if !ct.cfg.Broker.ReplicateCommit(m.MoveHeader, func(ok bool) {
		if ok {
			ct.commitState(m, ttx, c)
			return
		}
		ct.quorumAbort(m, ttx)
	}) {
		ct.commitState(m, ttx, c)
	}
}

// commitState finishes the target-side commit once the decision is safe to
// act on (quorum reached, or replication off). It runs on whichever
// goroutine observed the deciding acknowledgement; all the calls it makes
// are goroutine-safe.
func (ct *Container) commitState(m message.MoveState, ttx *targetTx, c *client.Client) {
	if !ct.attachCommit(m, ttx, c) {
		return
	}
	ct.emit(EventAckSent, m.Tx, m.Client, "")
	_ = ct.cfg.Broker.SendControl(message.MoveAck{
		MoveHeader:  m.MoveHeader,
		Reconfigure: ct.cfg.Protocol == ProtocolReconfig,
	})
}

// attachCommit settles the transaction and starts the client at this
// coordinator: the shared tail of the strict commit (which sends the
// acknowledgement after it) and the pipelined commit (which sent the
// acknowledgement already and deferred only this part to the quorum
// confirmation). Returns false when the transaction was aborted while the
// quorum was in flight — the rollback already ran.
func (ct *Container) attachCommit(m message.MoveState, ttx *targetTx, c *client.Client) bool {
	ct.mu.Lock()
	if cur, still := ct.target[m.Tx]; !still || cur != ttx {
		ct.mu.Unlock()
		return false
	}
	delete(ct.target, m.Tx)
	ct.mu.Unlock()

	// Hand the shell's identity to the real client stub, then merge all
	// notification sources exactly once.
	ct.cfg.Broker.AttachClient(ttx.shellNode, c.DeliverLocal)
	shell := ttx.drainShell()
	if ct.cfg.Protocol == ProtocolEndToEnd {
		c.RenameEntries(ttx.subIDMap, ttx.advIDMap)
	}
	ct.mu.Lock()
	ct.hosted[m.Client] = c
	ct.mu.Unlock()
	c.SetMover(ct)
	c.SetSender(ct.cfg.Broker.Inject)
	ct.installStateObserver(c)
	ct.installDeliveryObserver(c)
	_ = c.CompleteMove(ct.cfg.Broker.ID(), m.Buffered, shell)
	ct.jnlClient(journal.KindClientArrive, m.Tx, m.Client, fmt.Sprintf("%d transferred, %d shell-buffered", len(m.Buffered), len(shell)))

	// The commit decision becomes durable BEFORE the strict-mode
	// acknowledgement leaves this coordinator: a recovery query finding no
	// committed record can then safely conclude the movement never
	// committed (the answer the non-blocking termination rule depends on).
	// In pipelined mode the acknowledgement is already on the wire and that
	// rule rests on the path replicas' records — FIFO put them durably in
	// place ahead of it — so persisting here, at quorum confirmation, keeps
	// the coordinator's durable outcome in step with the agent's: neither
	// leaks a commit that a quorum failure would still turn into an abort.
	// The synchronous fsync is once per movement, not per message.
	_ = ct.cfg.Broker.PersistDecision(m.MoveHeader, "target", store.PhaseCommitted, true)
	return true
}

// quorumAbort aborts a movement whose commit decision could not reach a
// write quorum: the client has not been started here, so the source can
// safely resume it.
func (ct *Container) quorumAbort(m message.MoveState, ttx *targetTx) {
	ct.mu.Lock()
	if cur, still := ct.target[m.Tx]; !still || cur != ttx {
		ct.mu.Unlock()
		return
	}
	delete(ct.target, m.Tx)
	ct.mu.Unlock()
	ct.emit(EventAbortSent, m.Tx, m.Client, "replication quorum failure")
	_ = ct.cfg.Broker.PersistDecision(m.MoveHeader, "target", store.PhaseAborted, false)
	ct.cfg.Broker.ReplicateAbort(m.MoveHeader)
	_ = ct.cfg.Broker.SendControl(message.MoveAbort{
		MoveHeader:  m.MoveHeader,
		To:          m.Source,
		Reason:      "replication quorum failure",
		Reconfigure: ct.cfg.Protocol == ProtocolReconfig,
	})
	ct.rollbackTarget(ttx)
}

// --- source-side handlers ---------------------------------------------------

// onApprove processes message (2) at the source coordinator. The broker has
// already applied this hop's routing reconfiguration (if any) before
// delivering the message here. The client is stopped and its state shipped.
func (ct *Container) onApprove(m message.MoveApprove) {
	ct.emit(EventApproveReceived, m.Tx, m.Client, "")
	ct.mu.Lock()
	st, ok := ct.source[m.Tx]
	if !ok || st.state != sourceWait {
		ct.mu.Unlock()
		if !ok {
			// Already aborted locally (e.g. timeout): undo the target's
			// preparation along the path.
			_ = ct.cfg.Broker.SendControl(message.MoveAbort{
				MoveHeader: m.MoveHeader, To: m.Target, Reason: "movement already aborted at source", Reconfigure: m.Reconfigure,
			})
		}
		return
	}
	st.state = sourcePrepared
	ct.mu.Unlock()
	if st.timer != nil {
		st.timer.Stop()
	}

	buffered, err := st.c.PrepareStop()
	if err != nil {
		return
	}

	if ct.cfg.Protocol == ProtocolEndToEnd {
		// Retract the old filters from the source; the target's re-issued
		// ones are fully propagated by now (the approval is sent only
		// after their propagation quiesced).
		srcNode := message.ClientNode(m.Client, ct.cfg.Broker.ID())
		for _, se := range st.subs {
			ct.cfg.Broker.Inject(srcNode, message.Unsubscribe{
				ID: se.ID, Client: m.Client, TxTag: m.Tx,
			})
		}
		for _, ae := range st.advs {
			ct.cfg.Broker.Inject(srcNode, message.Unadvertise{
				ID: ae.ID, Client: m.Client, TxTag: m.Tx,
			})
		}
	}

	// Ship the full stub state: in-process targets resolve the client via
	// the shared directory, but a remote target (TCP deployment)
	// reconstructs the stub from this payload — message (4) is the actual
	// vehicle of the client's state, as in the paper.
	appState, err := st.c.Serialize()
	if err != nil {
		appState = nil
	}
	ct.emit(EventStateSent, m.Tx, m.Client, fmt.Sprintf("%d buffered notifications", len(buffered)))
	_ = ct.cfg.Broker.SendControl(message.MoveState{
		MoveHeader: m.MoveHeader,
		Buffered:   buffered,
		AppState:   appState,
	})
	// After the prepared point the source must wait for the outcome
	// (commit via ack, or abort): unilateral rollback is no longer safe
	// because the target may already have started the client. With
	// replication on, the wait is bounded: a probe timer fans a recovery
	// query out over the transaction's preference list, so a standby
	// finishes the move if the target coordinator died for good.
	if ct.cfg.Broker.ReplicationEnabled() {
		ct.armPreparedProbe(st, m.MoveHeader)
	}
}

// armPreparedProbe (re)arms the source-side timer that suspects a dead
// target coordinator after the prepared point.
func (ct *Container) armPreparedProbe(st *sourceTx, hdr message.MoveHeader) {
	wait := ct.cfg.MoveTimeout
	if wait <= 0 {
		wait = 2 * time.Second
	}
	ct.mu.Lock()
	if !ct.closed {
		st.timer = ct.clk.AfterFunc(wait, func() { ct.preparedProbe(hdr) })
	}
	ct.mu.Unlock()
}

// preparedProbe fires when a prepared movement saw no outcome within the
// move timeout: the source queries the target and every standby replica on
// the preference list, then arms the local-abort fallback in case the whole
// list is unreachable (the non-blocking termination rule).
func (ct *Container) preparedProbe(hdr message.MoveHeader) {
	ct.mu.Lock()
	if ct.closed {
		ct.mu.Unlock()
		return
	}
	st, ok := ct.source[hdr.Tx]
	if !ok || st.state != sourcePrepared {
		ct.mu.Unlock()
		return
	}
	st.timer = ct.clk.AfterFunc(ct.cfg.Broker.RecoveryWait(), func() { ct.preparedAbort(hdr) })
	ct.mu.Unlock()

	self := ct.cfg.Broker.ID()
	ct.emit(EventRecoveryFanout, hdr.Tx, hdr.Client, "prepared timeout; querying preference list")
	_ = ct.cfg.Broker.SendControl(message.MoveQuery{MoveHeader: hdr, From: self})
	for _, p := range ct.cfg.Broker.ReplicationPeers(hdr) {
		if p == hdr.Target || p == self {
			continue
		}
		_ = ct.cfg.Broker.SendControl(message.MoveQuery{MoveHeader: hdr, From: self, At: p})
	}
}

// preparedAbort is the source's last resort: the target coordinator and the
// entire preference list stayed silent past the recovery-query timeout, so
// the prepared movement is rolled back locally and the client resumed —
// the same bounded-divergence trade the restarted-broker fallback makes.
func (ct *Container) preparedAbort(hdr message.MoveHeader) {
	ct.mu.Lock()
	if ct.closed {
		ct.mu.Unlock()
		return
	}
	st, ok := ct.source[hdr.Tx]
	if !ok || st.state != sourcePrepared {
		ct.mu.Unlock()
		return
	}
	ct.mu.Unlock()
	_ = ct.cfg.Broker.SendControl(message.MoveAbort{
		MoveHeader:  hdr,
		To:          ct.cfg.Broker.ID(),
		Reason:      "recovery query timeout",
		Reconfigure: ct.cfg.Protocol == ProtocolReconfig,
	})
}

// onReject processes message (3) at the source coordinator.
func (ct *Container) onReject(m message.MoveReject) {
	ct.emit(EventRejectReceived, m.Tx, m.Client, m.Reason)
	ct.mu.Lock()
	st, ok := ct.source[m.Tx]
	if ok {
		delete(ct.source, m.Tx)
	}
	ct.mu.Unlock()
	if !ok {
		return
	}
	if st.timer != nil {
		st.timer.Stop()
	}
	st.c.Resume()
	ct.recordMovement(st, false)
	ct.emit(EventAborted, m.Tx, m.Client, "rejected: "+m.Reason)
	st.finish(ErrRejected)
}

// onAck processes message (5) at the source coordinator: the movement has
// committed; clean up the source copy.
func (ct *Container) onAck(m message.MoveAck) {
	ct.emit(EventAckReceived, m.Tx, m.Client, "")
	ct.mu.Lock()
	st, ok := ct.source[m.Tx]
	if ok {
		delete(ct.source, m.Tx)
		delete(ct.hosted, m.Client)
	}
	ct.mu.Unlock()
	if !ok {
		return
	}
	if st.timer != nil {
		st.timer.Stop()
	}

	srcNode := message.ClientNode(m.Client, ct.cfg.Broker.ID())
	ct.cfg.Broker.DetachClient(srcNode)
	ct.jnlClient(journal.KindClientDepart, m.Tx, m.Client, "source copy detached")

	if ct.cfg.Protocol == ProtocolEndToEnd && !ct.cfg.SkipPropagationWait {
		// The traditional movement is complete only when the retraction
		// cascade it triggered has settled.
		ct.spawn(func(ctx context.Context) {
			if err := ct.reg.AwaitTag(ctx, m.Tx); err != nil {
				st.finish(ErrShutdown)
				return
			}
			ct.reg.DropTag(m.Tx)
			ct.recordMovement(st, true)
			ct.emit(EventCommitted, m.Tx, m.Client, "after propagation quiescence")
			st.finish(nil)
		})
		return
	}
	ct.recordMovement(st, true)
	ct.emit(EventCommitted, m.Tx, m.Client, "")
	st.finish(nil)
}

// onAbort handles an abort arriving at either coordinator.
func (ct *Container) onAbort(m message.MoveAbort) {
	ct.emit(EventAbortReceived, m.Tx, m.Client, m.Reason)
	ct.mu.Lock()
	st, isSource := ct.source[m.Tx]
	ttx, isTarget := ct.target[m.Tx]
	delete(ct.source, m.Tx)
	delete(ct.target, m.Tx)
	ct.mu.Unlock()

	if isSource {
		if st.timer != nil {
			st.timer.Stop()
		}
		st.c.Resume()
		ct.recordMovement(st, false)
		ct.emit(EventAborted, m.Tx, m.Client, m.Reason)
		st.finish(ErrAborted)
	}
	if isTarget {
		if ttx.timer != nil {
			ttx.timer.Stop()
		}
		_ = ct.cfg.Broker.PersistDecision(m.MoveHeader, "target", store.PhaseAborted, false)
		ct.rollbackTarget(ttx)
	}
}

// onQuery answers a recovery probe at the target coordinator. The target is
// the commit decider and persists "committed" durably before the first
// acknowledgement leaves, so the answer is authoritative: a committed
// outcome is re-announced with a fresh acknowledgement (hops along the path
// re-apply the commit idempotently, including the restarted querier); no
// committed record means the movement cannot have committed anywhere, and
// the abort travels toward the querier rolling the prepared state back. A
// transaction still in flight gets no answer — it will resolve through the
// normal conversation, and the querier's local-abort fallback bounds the
// wait if it never does.
func (ct *Container) onQuery(m message.MoveQuery) {
	if m.At != "" && m.At != m.Target && m.At == ct.cfg.Broker.ID() {
		// Addressed to this broker as a standby replica, not as the target
		// coordinator: the replication agent answers from its record, or
		// opens a takeover bid when it holds none.
		if ct.cfg.Broker.ReplicationOnQuery(m) {
			return
		}
	}
	ct.emit(EventQueryReceived, m.Tx, m.Client, "from "+string(m.From))
	ct.mu.Lock()
	_, active := ct.target[m.Tx]
	ct.mu.Unlock()
	outcome, decided := ct.cfg.Broker.DecidedOutcome(m.Tx)
	switch {
	case decided && outcome == store.PhaseCommitted:
		ct.emit(EventQueryAnswered, m.Tx, m.Client, "committed; acknowledgement re-sent")
		_ = ct.cfg.Broker.SendControl(message.MoveAck{
			MoveHeader:  m.MoveHeader,
			Reconfigure: ct.cfg.Protocol == ProtocolReconfig,
		})
	case active && !decided:
		ct.emit(EventQueryAnswered, m.Tx, m.Client, "still in flight; no answer")
	default:
		ct.emit(EventQueryAnswered, m.Tx, m.Client, "no committed record; abort")
		_ = ct.cfg.Broker.SendControl(message.MoveAbort{
			MoveHeader:  m.MoveHeader,
			To:          m.From,
			Reason:      "recovery query: movement never committed",
			Reconfigure: ct.cfg.Protocol == ProtocolReconfig,
		})
	}
}

// onStandbyResolve applies a standby coordinator's resolution at this
// coordinator. The broker has already applied the hop-level routing effect;
// here the transaction state resolves as if the original coordinator had
// answered: a committed outcome behaves like the acknowledgement, anything
// else like an abort. The source additionally re-announces the resolution
// toward the (dead) target so every hop of the original path applies it,
// and releases the standby replicas.
func (ct *Container) onStandbyResolve(m message.StandbyResolve) {
	ct.emit(EventStandbyResolved, m.Tx, m.Client,
		fmt.Sprintf("outcome=%s gen=%d claimant=%s", m.Outcome, m.Gen, m.Claimant))
	self := ct.cfg.Broker.ID()
	reannounce := self == m.Source && m.To == self && ct.resolvedSource(m.Tx)
	if m.Outcome == store.PhaseCommitted {
		ct.onAck(message.MoveAck{
			MoveHeader: m.MoveHeader, Reconfigure: ct.cfg.Protocol == ProtocolReconfig, Gen: m.Gen,
		})
	} else {
		ct.onAbort(message.MoveAbort{
			MoveHeader:  m.MoveHeader,
			To:          self,
			Reason:      "standby resolution",
			Reconfigure: ct.cfg.Protocol == ProtocolReconfig,
		})
	}
	if reannounce {
		_ = ct.cfg.Broker.SendControl(message.StandbyResolve{
			MoveHeader: m.MoveHeader, Outcome: m.Outcome, Gen: m.Gen,
			Claimant: m.Claimant, To: m.Target,
		})
	}
}

// resolvedSource reports whether the transaction is still pending at this
// source coordinator (a duplicate resolution must not re-announce again).
func (ct *Container) resolvedSource(tx message.TxID) bool {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	_, ok := ct.source[tx]
	return ok
}

// --- timeouts (non-blocking variant) -----------------------------------------

func (ct *Container) sourceTimeout(tx message.TxID) {
	ct.mu.Lock()
	// A timer can fire concurrently with Shutdown; once closed, the
	// transaction has been resolved with ErrShutdown and the broker may be
	// stopped, so the timeout must do nothing.
	if ct.closed {
		ct.mu.Unlock()
		return
	}
	st, ok := ct.source[tx]
	if !ok || st.state != sourceWait {
		ct.mu.Unlock()
		return
	}
	delete(ct.source, tx)
	ct.mu.Unlock()
	ct.emit(EventSourceTimeout, tx, st.c.ID(), "")
	ct.emit(EventAbortSent, tx, st.c.ID(), "source timeout")

	// Clean up whatever the target may have prepared along the path.
	_ = ct.cfg.Broker.SendControl(message.MoveAbort{
		MoveHeader:  message.MoveHeader{Tx: tx, Client: st.c.ID(), Source: ct.cfg.Broker.ID(), Target: st.target},
		To:          st.target,
		Reason:      "source timeout waiting for approval",
		Reconfigure: ct.cfg.Protocol == ProtocolReconfig,
	})
	st.c.Resume()
	ct.recordMovement(st, false)
	ct.emit(EventAborted, tx, st.c.ID(), "source timeout")
	st.finish(ErrMoveTimeout)
}

func (ct *Container) armTargetTimer(ttx *targetTx) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.armTargetTimerLocked(ttx)
}

func (ct *Container) armTargetTimerLocked(ttx *targetTx) {
	if ct.cfg.MoveTimeout <= 0 || ct.closed {
		return
	}
	ttx.timer = ct.clk.AfterFunc(ct.cfg.MoveTimeout, func() { ct.targetTimeout(ttx.tx) })
}

func (ct *Container) targetTimeout(tx message.TxID) {
	ct.mu.Lock()
	// See sourceTimeout: a late timer must not act on a shut-down
	// container or its stopped broker.
	if ct.closed {
		ct.mu.Unlock()
		return
	}
	ttx, ok := ct.target[tx]
	if !ok {
		ct.mu.Unlock()
		return
	}
	delete(ct.target, tx)
	ct.mu.Unlock()
	ct.emit(EventTargetTimeout, tx, ttx.clientID, "")
	ct.emit(EventAbortSent, tx, ttx.clientID, "target timeout")

	hdr := message.MoveHeader{Tx: tx, Client: ttx.clientID, Source: ttx.source, Target: ct.cfg.Broker.ID()}
	_ = ct.cfg.Broker.PersistDecision(hdr, "target", store.PhaseAborted, false)
	_ = ct.cfg.Broker.SendControl(message.MoveAbort{
		MoveHeader:  hdr,
		To:          ttx.source,
		Reason:      "target timeout waiting for state transfer",
		Reconfigure: ct.cfg.Protocol == ProtocolReconfig,
	})
	ct.rollbackTarget(ttx)
}

// rollbackTarget undoes the target-side preparation: retract re-issued
// filters (end-to-end) and tear the shell down.
func (ct *Container) rollbackTarget(ttx *targetTx) {
	if ct.cfg.Protocol == ProtocolEndToEnd {
		for _, newID := range ttx.subIDMap {
			ct.cfg.Broker.Inject(ttx.shellNode, message.Unsubscribe{
				ID: newID, Client: ttx.clientID, TxTag: ttx.tx,
			})
		}
		for _, newID := range ttx.advIDMap {
			ct.cfg.Broker.Inject(ttx.shellNode, message.Unadvertise{
				ID: newID, Client: ttx.clientID, TxTag: ttx.tx,
			})
		}
	}
	ct.teardownShell(ttx)
}

func (ct *Container) teardownShell(ttx *targetTx) {
	ct.cfg.Broker.DetachClient(ttx.shellNode)
}

// --- helpers ------------------------------------------------------------------

func (ct *Container) recordMovement(st *sourceTx, committed bool) {
	// The movement is fully resolved at its source: stand the transaction's
	// standby replicas down (the release is the conversation's final
	// heartbeat; a replica that never receives it suspects the coordinator).
	ct.cfg.Broker.ReplicationRelease(message.MoveHeader{
		Tx: st.tx, Client: st.c.ID(), Source: ct.cfg.Broker.ID(), Target: st.target,
	})
	ct.reg.RecordMovement(metrics.Movement{
		Tx:        st.tx,
		Client:    st.c.ID(),
		Source:    ct.cfg.Broker.ID(),
		Target:    st.target,
		Protocol:  ct.cfg.Protocol.String(),
		Start:     st.start,
		End:       ct.clk.Now(),
		Committed: committed,
	})
}

// spawn runs fn on a container-managed goroutine whose context is cancelled
// at shutdown.
func (ct *Container) spawn(fn func(ctx context.Context)) {
	ct.mu.Lock()
	if ct.closed {
		ct.mu.Unlock()
		return
	}
	ct.wg.Add(1)
	ct.mu.Unlock()
	go func() {
		defer ct.wg.Done()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			select {
			case <-ct.stop:
				cancel()
			case <-ctx.Done():
			}
		}()
		fn(ctx)
	}()
}
