package core

import (
	"fmt"
	"sort"
	"strings"

	"padres/internal/client"
)

// This file is an executable model of the movement protocol's state
// machines (the paper's Fig. 4) and of the reachable global state graph
// derived from them (Fig. 5). The model is independent of the runtime
// implementation; the tests exhaustively enumerate its reachable states and
// verify the two properties the paper's correctness proofs rest on:
//
//	(1) in a final global state, exactly one client copy is started and
//	    the other is cleaned (or was never created, on abort); and
//	(2) in every reachable global state, at most one client copy is
//	    started.

// CoordState is a coordinator state from Fig. 4.
type CoordState int

// Coordinator states.
const (
	CoordInit CoordState = iota + 1
	CoordWait
	CoordPrepare
	CoordAbort
	CoordCommit
)

var coordNames = map[CoordState]string{
	CoordInit:    "init",
	CoordWait:    "wait",
	CoordPrepare: "prepare",
	CoordAbort:   "abort",
	CoordCommit:  "commit",
}

// String returns the coordinator state name.
func (s CoordState) String() string {
	if n, ok := coordNames[s]; ok {
		return n
	}
	return fmt.Sprintf("coord(%d)", int(s))
}

// ModelMsg is a coordinator-to-coordinator message in the model.
type ModelMsg int

// Protocol messages (1)-(5) of Fig. 3, plus the aborts exchanged by the
// non-blocking variant.
const (
	MsgNego ModelMsg = iota + 1
	MsgApprove
	MsgReject
	MsgState
	MsgAck
	MsgAbortToTarget
	MsgAbortToSource
)

var msgNames = map[ModelMsg]string{
	MsgNego:          "nego",
	MsgApprove:       "approve",
	MsgReject:        "reject",
	MsgState:         "state",
	MsgAck:           "ack",
	MsgAbortToTarget: "abort>tgt",
	MsgAbortToSource: "abort>src",
}

// String returns the message name.
func (m ModelMsg) String() string {
	if n, ok := msgNames[m]; ok {
		return n
	}
	return fmt.Sprintf("msg(%d)", int(m))
}

// GlobalState is one vertex of the reachable global state graph: the local
// states of both coordinators and both client copies, plus the multiset of
// outstanding messages.
type GlobalState struct {
	Src       CoordState
	Tgt       CoordState
	SrcClient client.State
	TgtClient client.State
	Msgs      string // canonical sorted encoding of the outstanding multiset
}

// Key returns a printable canonical form, e.g. "wS,iT|pause_move,init|nego".
func (g GlobalState) Key() string {
	return fmt.Sprintf("%sS,%sT|%s,%s|%s",
		g.Src.String()[:1], g.Tgt.String()[:1], g.SrcClient, g.TgtClient, g.Msgs)
}

// Final reports whether no outstanding message remains and both
// coordinators are in a terminal state.
func (g GlobalState) Final() bool {
	if g.Msgs != "" {
		return false
	}
	srcDone := g.Src == CoordCommit || g.Src == CoordAbort
	tgtDone := g.Tgt == CoordCommit || g.Tgt == CoordAbort ||
		(g.Tgt == CoordInit && g.Src == CoordAbort) // source timed out before target ever heard
	return srcDone && tgtDone
}

func addMsg(msgs string, m ModelMsg) string {
	parts := splitMsgs(msgs)
	parts = append(parts, m.String())
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func removeMsg(msgs string, m ModelMsg) (string, bool) {
	parts := splitMsgs(msgs)
	for i, p := range parts {
		if p == m.String() {
			parts = append(parts[:i], parts[i+1:]...)
			return strings.Join(parts, ","), true
		}
	}
	return msgs, false
}

func splitMsgs(msgs string) []string {
	if msgs == "" {
		return nil
	}
	return strings.Split(msgs, ",")
}

// Model configures the exploration.
type Model struct {
	// AllowReject lets the target coordinator reject the negotiate
	// message.
	AllowReject bool
	// AllowTimeout adds the non-blocking variant's timeout transitions: a
	// waiting source and a prepared target may abort spontaneously.
	AllowTimeout bool
}

// Graph is the reachable global state graph.
type Graph struct {
	States map[string]GlobalState
	Edges  map[string][]string
	Finals []GlobalState
}

// Explore enumerates every reachable global state starting from the moment
// the application issues the move command.
func (m Model) Explore() *Graph {
	initial := GlobalState{
		Src:       CoordWait,
		Tgt:       CoordInit,
		SrcClient: client.StatePauseMove,
		TgtClient: client.StateInit,
		Msgs:      addMsg("", MsgNego),
	}
	g := &Graph{
		States: map[string]GlobalState{initial.Key(): initial},
		Edges:  make(map[string][]string),
	}
	queue := []GlobalState{initial}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range m.successors(cur) {
			g.Edges[cur.Key()] = append(g.Edges[cur.Key()], next.Key())
			if _, seen := g.States[next.Key()]; !seen {
				g.States[next.Key()] = next
				queue = append(queue, next)
			}
		}
	}
	for _, st := range g.States {
		if st.Final() {
			g.Finals = append(g.Finals, st)
		}
	}
	sort.Slice(g.Finals, func(i, j int) bool { return g.Finals[i].Key() < g.Finals[j].Key() })
	return g
}

// successors returns every global state reachable by one local transition:
// the delivery of one outstanding message, or (if enabled) one timeout.
func (m Model) successors(g GlobalState) []GlobalState {
	var out []GlobalState

	deliver := func(msg ModelMsg, apply func(GlobalState) []GlobalState) {
		rest, ok := removeMsg(g.Msgs, msg)
		if !ok {
			return
		}
		next := g
		next.Msgs = rest
		out = append(out, apply(next)...)
	}

	// Target: negotiate arrives.
	deliver(MsgNego, func(s GlobalState) []GlobalState {
		if s.Tgt != CoordInit {
			return nil
		}
		var res []GlobalState
		accept := s
		accept.Tgt = CoordPrepare
		accept.TgtClient = client.StateCreated // [create]
		accept.Msgs = addMsg(accept.Msgs, MsgApprove)
		res = append(res, accept)
		if m.AllowReject {
			reject := s
			reject.Tgt = CoordAbort
			reject.Msgs = addMsg(reject.Msgs, MsgReject)
			res = append(res, reject)
		}
		return res
	})

	// Source: approval arrives.
	deliver(MsgApprove, func(s GlobalState) []GlobalState {
		switch s.Src {
		case CoordWait:
			s.Src = CoordPrepare
			s.SrcClient = client.StatePrepareStop // [prepare-stop]
			s.Msgs = addMsg(s.Msgs, MsgState)
			return []GlobalState{s}
		case CoordAbort:
			// Source already aborted (timeout): undo the target.
			s.Msgs = addMsg(s.Msgs, MsgAbortToTarget)
			return []GlobalState{s}
		default:
			return nil
		}
	})

	// Source: rejection arrives.
	deliver(MsgReject, func(s GlobalState) []GlobalState {
		if s.Src == CoordWait {
			s.Src = CoordAbort
			s.SrcClient = client.StateStarted // [resume]
			return []GlobalState{s}
		}
		if s.Src == CoordAbort {
			return []GlobalState{s} // duplicate outcome after timeout
		}
		return nil
	})

	// Target: state transfer arrives.
	deliver(MsgState, func(s GlobalState) []GlobalState {
		switch s.Tgt {
		case CoordPrepare:
			s.Tgt = CoordCommit
			s.TgtClient = client.StateStarted // [state] + start
			s.Msgs = addMsg(s.Msgs, MsgAck)
			return []GlobalState{s}
		case CoordAbort:
			// Target timed out earlier; tell the source to resume.
			s.Msgs = addMsg(s.Msgs, MsgAbortToSource)
			return []GlobalState{s}
		default:
			return nil
		}
	})

	// Source: acknowledgement arrives.
	deliver(MsgAck, func(s GlobalState) []GlobalState {
		if s.Src == CoordPrepare {
			s.Src = CoordCommit
			s.SrcClient = client.StateCleaned // [clean]
			return []GlobalState{s}
		}
		return nil
	})

	// Abort travelling to the target.
	deliver(MsgAbortToTarget, func(s GlobalState) []GlobalState {
		if s.Tgt == CoordPrepare {
			s.Tgt = CoordAbort
			s.TgtClient = client.StateCleaned
			return []GlobalState{s}
		}
		return []GlobalState{s} // no-op elsewhere
	})

	// Abort travelling to the source.
	deliver(MsgAbortToSource, func(s GlobalState) []GlobalState {
		switch s.Src {
		case CoordWait, CoordPrepare:
			s.Src = CoordAbort
			s.SrcClient = client.StateStarted
			return []GlobalState{s}
		default:
			return []GlobalState{s} // no-op elsewhere
		}
	})

	// Timeouts (non-blocking variant).
	if m.AllowTimeout {
		if g.Src == CoordWait {
			s := g
			s.Src = CoordAbort
			s.SrcClient = client.StateStarted
			s.Msgs = addMsg(s.Msgs, MsgAbortToTarget)
			out = append(out, s)
		}
		if g.Tgt == CoordPrepare {
			s := g
			s.Tgt = CoordAbort
			s.TgtClient = client.StateCleaned
			s.Msgs = addMsg(s.Msgs, MsgAbortToSource)
			out = append(out, s)
		}
	}
	return out
}
