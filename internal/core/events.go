package core

import (
	"fmt"
	"sync"
	"time"

	"padres/internal/journal"
	"padres/internal/message"
)

// Movement transactions emit typed events at every protocol step. An
// EventSink receives them; the Trace helper collects them for tests,
// debugging, and tooling. Event emission is disabled (zero cost beyond a
// nil check) unless a sink is installed.

// EventKind identifies a protocol step.
type EventKind int

// Protocol steps, in the order of a successful movement. Reject, abort and
// timeout steps interleave on failure paths.
const (
	EventMoveRequested EventKind = iota + 1
	EventNegotiateSent
	EventNegotiateReceived
	EventRejectSent
	EventApproveSent
	EventApproveReceived
	EventRejectReceived
	EventStateSent
	EventStateReceived
	EventAckSent
	EventAckReceived
	EventAbortSent
	EventAbortReceived
	EventSourceTimeout
	EventTargetTimeout
	EventCommitted
	EventAborted
	// EventClientState reports a client stub state transition (Fig. 4);
	// Detail carries "from->to". It is emitted outside any movement
	// transaction scope, so Tx is empty.
	EventClientState
	// EventQueryReceived and EventQueryAnswered trace the recovery query
	// protocol: a restarted broker asking the target coordinator about an
	// in-doubt movement, and the coordinator's durable-outcome answer.
	EventQueryReceived
	EventQueryAnswered
	// EventRecoveryFanout marks a prepared source coordinator suspecting a
	// dead target: it queries the transaction's whole preference list.
	EventRecoveryFanout
	// EventStandbyResolved marks a standby coordinator's resolution arriving
	// at a coordinator; Detail carries outcome, generation, and claimant.
	EventStandbyResolved
)

var eventNames = map[EventKind]string{
	EventMoveRequested:     "move-requested",
	EventNegotiateSent:     "negotiate-sent",
	EventNegotiateReceived: "negotiate-received",
	EventRejectSent:        "reject-sent",
	EventApproveSent:       "approve-sent",
	EventApproveReceived:   "approve-received",
	EventRejectReceived:    "reject-received",
	EventStateSent:         "state-sent",
	EventStateReceived:     "state-received",
	EventAckSent:           "ack-sent",
	EventAckReceived:       "ack-received",
	EventAbortSent:         "abort-sent",
	EventAbortReceived:     "abort-received",
	EventSourceTimeout:     "source-timeout",
	EventTargetTimeout:     "target-timeout",
	EventCommitted:         "committed",
	EventAborted:           "aborted",
	EventClientState:       "client-state",
	EventQueryReceived:     "query-received",
	EventQueryAnswered:     "query-answered",
	EventRecoveryFanout:    "recovery-fanout",
	EventStandbyResolved:   "standby-resolved",
}

// String returns the event name.
func (k EventKind) String() string {
	if n, ok := eventNames[k]; ok {
		return n
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one protocol step observed at one coordinator.
type Event struct {
	Kind   EventKind
	Tx     message.TxID
	Client message.ClientID
	Broker message.BrokerID // the coordinator that observed the step
	At     time.Time
	Detail string
}

// String renders the event for logs.
func (e Event) String() string {
	s := fmt.Sprintf("%s tx=%s client=%s at=%s", e.Kind, e.Tx, e.Client, e.Broker)
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// EventSink receives protocol events. Sinks run on coordinator goroutines
// and must not block.
type EventSink func(Event)

// SetEventSink installs (or, with nil, removes) the container's sink.
func (ct *Container) SetEventSink(sink EventSink) {
	if sink == nil {
		ct.events.Store(nil)
		return
	}
	ct.events.Store(&sink)
}

// emit sends an event to the sink, if any, and dual-writes it to the flight
// recorder as a protocol record. It takes no container lock, so it is safe
// from any calling context (including client state observers that run under
// the client stub's lock).
func (ct *Container) emit(kind EventKind, tx message.TxID, cl message.ClientID, detail string) {
	ct.emitStamped(0, kind, tx, cl, detail)
}

// reserveStamp ticks the site's Lamport clock now and returns the stamp for
// a later emitStamped. The pipelined commit uses it to place its deferred
// ack-sent record at the causal point where the acknowledgement actually
// left, ahead of everything downstream of the wire message; 0 is returned
// when no journal is armed.
func (ct *Container) reserveStamp() uint64 {
	j := ct.journal()
	if j == nil {
		return 0
	}
	return j.ClockOf(string(ct.cfg.Broker.ID())).Tick()
}

// emitStamped is emit with an optional pre-reserved Lamport stamp (0 ticks
// the clock at append time, as emit always did).
func (ct *Container) emitStamped(lam uint64, kind EventKind, tx message.TxID, cl message.ClientID, detail string) {
	if j := ct.journal(); j != nil {
		cat := journal.CatProtocol
		if kind == EventClientState {
			cat = journal.CatClient
		}
		site := string(ct.cfg.Broker.ID())
		if lam == 0 {
			lam = j.ClockOf(site).Tick()
		}
		j.Add(journal.Record{
			Site: site, Cat: cat, Kind: kind.String(),
			Lamport: lam, Tx: string(tx), Client: string(cl), Detail: detail,
		})
	}
	p := ct.events.Load()
	if p == nil {
		return
	}
	(*p)(Event{
		Kind:   kind,
		Tx:     tx,
		Client: cl,
		Broker: ct.cfg.Broker.ID(),
		At:     ct.clk.Now(),
		Detail: detail,
	})
}

// Trace is a threadsafe event collector.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Sink returns an EventSink appending into the trace.
func (tr *Trace) Sink() EventSink {
	return func(e Event) {
		tr.mu.Lock()
		defer tr.mu.Unlock()
		tr.events = append(tr.events, e)
	}
}

// Events returns a copy of the collected events in arrival order.
func (tr *Trace) Events() []Event {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]Event, len(tr.events))
	copy(out, tr.events)
	return out
}

// ForTx returns the events of one movement transaction, in order.
func (tr *Trace) ForTx(tx message.TxID) []Event {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var out []Event
	for _, e := range tr.events {
		if e.Tx == tx {
			out = append(out, e)
		}
	}
	return out
}

// Kinds returns the event kinds of one transaction in order — convenient
// for asserting protocol sequences in tests.
func (tr *Trace) Kinds(tx message.TxID) []EventKind {
	events := tr.ForTx(tx)
	out := make([]EventKind, len(events))
	for i, e := range events {
		out[i] = e.Kind
	}
	return out
}

// Reset clears the trace.
func (tr *Trace) Reset() {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.events = nil
}
