package core

import (
	"time"

	"padres/internal/client"
	"padres/internal/message"
	"padres/internal/telemetry"
)

// This file bridges the container's protocol events into the telemetry
// layer. The dependency points one way only — core imports telemetry — so
// the telemetry package stays importable from every layer of the stack.

// PhaseSink returns an EventSink that feeds movement events into a span
// recorder, which derives one span per 3PC phase (init, prepare, precommit,
// commit, abort) for each movement transaction. Events without a
// transaction (such as client state transitions) are ignored by the
// recorder.
func PhaseSink(rec *telemetry.SpanRecorder) EventSink {
	return func(e Event) {
		rec.Observe(string(e.Tx), string(e.Client), string(e.Broker), e.Kind.String(), e.At, e.Detail)
	}
}

// CombineSinks fans one event out to several sinks, skipping nils.
func CombineSinks(sinks ...EventSink) EventSink {
	return func(e Event) {
		for _, s := range sinks {
			if s != nil {
				s(e)
			}
		}
	}
}

// installStateObserver wires a hosted client's Fig. 4 state machine into
// the container's event stream as EventClientState events. The observer
// runs under the client stub's lock, which is why emit must not take
// ct.mu (see Container.events).
func (ct *Container) installStateObserver(c *client.Client) {
	c.SetStateObserver(func(id message.ClientID, from, to client.State, at time.Time) {
		ct.emit(EventClientState, "", id, from.String()+"->"+to.String())
	})
}
