package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"padres/internal/cluster"
	"padres/internal/core"
	"padres/internal/message"
	"padres/internal/predicate"
)

func TestAdmitAll(t *testing.T) {
	if err := core.AdmitAll()(message.MoveNegotiate{}); err != nil {
		t.Fatalf("AdmitAll rejected: %v", err)
	}
}

func TestDenyClients(t *testing.T) {
	policy := core.DenyClients("bad", "worse")
	if err := policy(message.MoveNegotiate{MoveHeader: message.MoveHeader{Client: "bad"}}); err == nil {
		t.Error("denied client accepted")
	}
	if err := policy(message.MoveNegotiate{MoveHeader: message.MoveHeader{Client: "fine"}}); err != nil {
		t.Errorf("allowed client rejected: %v", err)
	}
}

func TestMaxEntriesAdmission(t *testing.T) {
	policy := core.MaxEntriesAdmission(2)
	small := message.MoveNegotiate{Subs: []message.SubEntry{{ID: "s1"}}}
	if err := policy(small); err != nil {
		t.Errorf("small client rejected: %v", err)
	}
	big := message.MoveNegotiate{
		Subs: []message.SubEntry{{ID: "s1"}, {ID: "s2"}},
		Advs: []message.AdvEntry{{ID: "a1"}},
	}
	if err := policy(big); err == nil {
		t.Error("oversized client accepted")
	}
}

func TestCombineAdmission(t *testing.T) {
	calls := 0
	counting := func(message.MoveNegotiate) error { calls++; return nil }
	policy := core.CombineAdmission(nil, counting, core.DenyClients("bad"), counting)
	if err := policy(message.MoveNegotiate{MoveHeader: message.MoveHeader{Client: "bad"}}); err == nil {
		t.Error("combined policy accepted a denied client")
	}
	if calls != 1 {
		t.Errorf("policies after the rejection ran: calls = %d", calls)
	}
	calls = 0
	if err := policy(message.MoveNegotiate{MoveHeader: message.MoveHeader{Client: "ok"}}); err != nil {
		t.Errorf("combined policy rejected: %v", err)
	}
	if calls != 2 {
		t.Errorf("not all policies ran: calls = %d", calls)
	}
}

func TestDenyClientsEndToEnd(t *testing.T) {
	opts := cluster.Options{
		Protocol:  core.ProtocolReconfig,
		Admission: core.DenyClients("pariah"),
	}
	c := newCluster(t, opts)
	cl, err := c.NewClient("pariah", "b1")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := c.NewClient("citizen", "b1")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := cl.Move(ctx, "b13"); !errors.Is(err, core.ErrRejected) {
		t.Fatalf("denied client move = %v, want ErrRejected", err)
	}
	if err := ok.Move(ctx, "b13"); err != nil {
		t.Fatalf("allowed client move = %v", err)
	}
}

// TestPerPublisherOrdering verifies the notification-layer guarantee that a
// stationary subscriber observes one publisher's notifications in
// publication order (acyclic overlay + FIFO links), and that the order is
// preserved for the prefix delivered before a movement and re-established
// after it.
func TestPerPublisherOrdering(t *testing.T) {
	c := newCluster(t, moveOpts(core.ProtocolReconfig))
	pub, err := c.NewClient("pub", "b5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Advertise(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	sub, err := c.NewClient("sub", "b1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Subscribe(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	settle(t, c)

	const n = 50
	for i := 1; i <= n; i++ {
		if _, err := pub.Publish(predicate.Event{"x": predicate.Number(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	settle(t, c)

	last := 0.0
	for i := 0; i < n; i++ {
		got, ok := sub.TryReceive()
		if !ok {
			t.Fatalf("only %d of %d notifications delivered", i, n)
		}
		x := got.Event["x"].Number64()
		if x <= last {
			t.Fatalf("ordering violated: %v after %v", x, last)
		}
		last = x
	}
}
