package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"padres/internal/cluster"
	"padres/internal/core"
	"padres/internal/message"
)

// installTrace attaches one trace to every container of the cluster.
func installTrace(c *cluster.Cluster) *core.Trace {
	tr := core.NewTrace()
	for _, bid := range c.Brokers() {
		c.Container(bid).SetEventSink(tr.Sink())
	}
	return tr
}

func kindsEqual(got []core.EventKind, want []core.EventKind) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func singleTx(t *testing.T, tr *core.Trace) message.TxID {
	t.Helper()
	var tx message.TxID
	for _, e := range tr.Events() {
		if e.Tx == "" {
			// Client state transitions are emitted outside any movement
			// transaction.
			continue
		}
		if tx == "" {
			tx = e.Tx
		} else if e.Tx != tx {
			t.Fatalf("multiple transactions in trace: %s and %s", tx, e.Tx)
		}
	}
	if tx == "" {
		t.Fatal("no transaction events recorded")
	}
	return tx
}

// TestEventSequenceCommit asserts the happy-path protocol sequence of
// Fig. 3: (1) negotiate, (2) approve, (4) state, (5) ack, committed.
func TestEventSequenceCommit(t *testing.T) {
	c := newCluster(t, moveOpts(core.ProtocolReconfig))
	tr := installTrace(c)
	cl, err := c.NewClient("c1", "b1")
	if err != nil {
		t.Fatal(err)
	}
	mustMove(t, cl, "b13")
	settle(t, c)

	tx := singleTx(t, tr)
	want := []core.EventKind{
		core.EventMoveRequested,
		core.EventNegotiateSent,
		core.EventNegotiateReceived,
		core.EventApproveSent,
		core.EventApproveReceived,
		core.EventStateSent,
		core.EventStateReceived,
		core.EventAckSent,
		core.EventAckReceived,
		core.EventCommitted,
	}
	if got := tr.Kinds(tx); !kindsEqual(got, want) {
		t.Fatalf("protocol sequence:\n got %v\nwant %v", got, want)
	}
	// Source-side events at b1, target-side at b13.
	for _, e := range tr.ForTx(tx) {
		switch e.Kind {
		case core.EventMoveRequested, core.EventNegotiateSent, core.EventApproveReceived,
			core.EventStateSent, core.EventAckReceived, core.EventCommitted:
			if e.Broker != "b1" {
				t.Errorf("%s observed at %s, want b1", e.Kind, e.Broker)
			}
		default:
			if e.Broker != "b13" {
				t.Errorf("%s observed at %s, want b13", e.Kind, e.Broker)
			}
		}
	}
}

// TestEventSequenceReject asserts the rejection path: negotiate, reject,
// aborted.
func TestEventSequenceReject(t *testing.T) {
	opts := moveOpts(core.ProtocolReconfig)
	opts.Admission = core.DenyClients("c1")
	c := newCluster(t, opts)
	tr := installTrace(c)
	cl, err := c.NewClient("c1", "b1")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := cl.Move(ctx, "b13"); !errors.Is(err, core.ErrRejected) {
		t.Fatalf("move = %v", err)
	}
	settle(t, c)

	tx := singleTx(t, tr)
	want := []core.EventKind{
		core.EventMoveRequested,
		core.EventNegotiateSent,
		core.EventNegotiateReceived,
		core.EventRejectSent,
		core.EventRejectReceived,
		core.EventAborted,
	}
	if got := tr.Kinds(tx); !kindsEqual(got, want) {
		t.Fatalf("rejection sequence:\n got %v\nwant %v", got, want)
	}
}

// TestEventSequenceTimeout asserts the non-blocking variant's timeout path.
func TestEventSequenceTimeout(t *testing.T) {
	opts := moveOpts(core.ProtocolReconfig)
	opts.MoveTimeout = 200 * time.Millisecond
	c := newCluster(t, opts)
	tr := installTrace(c)
	cl, err := c.NewClient("c1", "b1")
	if err != nil {
		t.Fatal(err)
	}
	c.Broker("b13").Stop() // target dead: negotiate dies, source times out
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := cl.Move(ctx, "b13"); !errors.Is(err, core.ErrMoveTimeout) {
		t.Fatalf("move = %v", err)
	}
	settle(t, c)

	tx := singleTx(t, tr)
	want := []core.EventKind{
		core.EventMoveRequested,
		core.EventNegotiateSent,
		core.EventSourceTimeout,
		core.EventAbortSent,
		core.EventAborted,
	}
	if got := tr.Kinds(tx); !kindsEqual(got, want) {
		t.Fatalf("timeout sequence:\n got %v\nwant %v", got, want)
	}
}

func TestTraceHelpers(t *testing.T) {
	tr := core.NewTrace()
	sink := tr.Sink()
	sink(core.Event{Kind: core.EventCommitted, Tx: "t1"})
	sink(core.Event{Kind: core.EventAborted, Tx: "t2", Detail: "boom"})
	if len(tr.Events()) != 2 {
		t.Fatalf("events = %d", len(tr.Events()))
	}
	if got := tr.ForTx("t2"); len(got) != 1 || got[0].Detail != "boom" {
		t.Errorf("ForTx = %v", got)
	}
	if s := tr.Events()[1].String(); s == "" {
		t.Error("empty event string")
	}
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Error("reset did not clear")
	}
	if core.EventKind(99).String() != "event(99)" {
		t.Error("unknown kind string")
	}
	if core.EventCommitted.String() != "committed" {
		t.Error("committed string")
	}
}
