// Package core implements the paper's primary contribution: transactional
// client movement in a distributed content-based pub/sub network.
//
// A mobile container is co-located with every broker. It encapsulates the
// movement coordinator and the clients hosted at that broker, giving the
// middleware full control over client deployment (Sec. 4.1). Containers
// execute the movement conversation of Fig. 3 — negotiate, approve/reject,
// state transfer, acknowledge — as a three-phase-commit-style transaction
// between the source and target coordinators, with two interchangeable
// routing-layer strategies:
//
//   - ProtocolReconfig: the approve message reconfigures routing tables
//     hop-by-hop along the path between source and target brokers
//     (Sec. 4.4); movement traffic is confined to that path.
//
//   - ProtocolEndToEnd: the traditional protocol, in which the target
//     re-issues the client's subscriptions and advertisements and the
//     source retracts them, letting both propagate through the network
//     (optionally quenched by the covering optimization). The movement
//     completes only when this propagation has quiesced, which the
//     container detects with a termination detector (modelled out-of-band
//     by the harness's tagged in-flight accounting).
//
// The non-blocking variant arms timeouts in the wait and prepare states so
// that, under the bounded-delay network model, every movement transaction
// terminates; with timeouts disabled the blocking variant is obtained.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"padres/internal/broker"
	"padres/internal/client"
	"padres/internal/journal"
	"padres/internal/message"
	"padres/internal/metrics"
	"padres/internal/sim"
	"padres/internal/transport"
)

// Protocol selects the movement protocol's routing-layer strategy.
type Protocol int

// Movement protocols.
const (
	// ProtocolReconfig is the paper's hop-by-hop reconfiguration protocol.
	ProtocolReconfig Protocol = iota + 1
	// ProtocolEndToEnd is the traditional unsubscribe/resubscribe protocol
	// (called the "covering" protocol in the evaluation when brokers run
	// with the covering optimization enabled).
	ProtocolEndToEnd
)

// String returns the protocol's evaluation label.
func (p Protocol) String() string {
	switch p {
	case ProtocolReconfig:
		return "reconfig"
	case ProtocolEndToEnd:
		return "covering"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// Errors reported by movement transactions.
var (
	ErrRejected    = errors.New("movement rejected by target broker")
	ErrAborted     = errors.New("movement aborted")
	ErrMoveTimeout = errors.New("movement timed out")
	ErrNotHosted   = errors.New("client is not hosted by this container")
	ErrShutdown    = errors.New("container shut down")
)

// AdmissionFunc decides whether a target broker accepts a moving client.
// Returning an error rejects the movement with that reason.
type AdmissionFunc func(m message.MoveNegotiate) error

// Directory is the shared client registry through which the target
// container obtains the client being transferred. In a distributed
// deployment the client state travels inside the MoveState message; the
// in-process directory stands in for deserializing it.
type Directory struct {
	mu sync.Mutex
	m  map[message.ClientID]*client.Client
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{m: make(map[message.ClientID]*client.Client)}
}

// Put registers a client.
func (d *Directory) Put(c *client.Client) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.m[c.ID()] = c
}

// Get looks a client up, or returns nil.
func (d *Directory) Get(id message.ClientID) *client.Client {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.m[id]
}

// Delete removes a client.
func (d *Directory) Delete(id message.ClientID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.m, id)
}

// Config configures a mobile container.
type Config struct {
	Broker    *broker.Broker
	Net       *transport.Network
	Directory *Directory
	Protocol  Protocol
	// MoveTimeout arms the non-blocking 3PC variant: a source coordinator
	// waiting for approval, or a target coordinator waiting for state
	// transfer, aborts after this duration. Zero selects the blocking
	// variant (no timeouts; termination relies on eventual delivery).
	MoveTimeout time.Duration
	// Admission, if set, can reject incoming clients.
	Admission AdmissionFunc
	// SkipPropagationWait disables waiting for the end-to-end protocol's
	// (un)subscription propagation to quiesce before declaring a movement
	// complete. Used only by ablation experiments; the traditional
	// protocol's delivery guarantee depends on the wait.
	SkipPropagationWait bool
}

// Container is the mobile container co-located with one broker.
type Container struct {
	cfg Config
	reg *metrics.Registry
	// clk is the container's time source, inherited from the transport.
	clk sim.Clock

	// events holds the installed EventSink; it is read lock-free because
	// sinks are invoked from contexts that may hold the client stub's lock
	// (state-transition observers), where taking ct.mu could deadlock.
	events atomic.Pointer[EventSink]

	mu     sync.Mutex
	hosted map[message.ClientID]*client.Client
	source map[message.TxID]*sourceTx
	target map[message.TxID]*targetTx
	txgen  *message.IDGen
	stop   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

type sourceState int

const (
	sourceWait sourceState = iota + 1
	sourcePrepared
)

type sourceTx struct {
	tx     message.TxID
	c      *client.Client
	target message.BrokerID
	subs   []message.SubEntry
	advs   []message.AdvEntry
	start  time.Time
	done   chan error
	timer  sim.Timer
	state  sourceState
}

type targetTx struct {
	tx        message.TxID
	clientID  message.ClientID
	source    message.BrokerID
	shellNode message.NodeID
	timer     sim.Timer
	// deciding marks the commit decision in flight (replication quorum
	// round started); duplicate state transfers must not start another.
	deciding bool

	shellMu  sync.Mutex
	shellBuf []message.Publish

	// End-to-end protocol: the fresh identifiers issued at the target.
	subIDMap map[message.SubID]message.SubID
	advIDMap map[message.AdvID]message.AdvID
}

func (t *targetTx) shellDeliver(pub message.Publish) {
	t.shellMu.Lock()
	t.shellBuf = append(t.shellBuf, pub)
	t.shellMu.Unlock()
}

func (t *targetTx) drainShell() []message.Publish {
	t.shellMu.Lock()
	defer t.shellMu.Unlock()
	out := t.shellBuf
	t.shellBuf = nil
	return out
}

// NewContainer creates the container and installs it as the broker's
// control sink.
func NewContainer(cfg Config) *Container {
	ct := &Container{
		cfg:    cfg,
		reg:    cfg.Net.Registry(),
		clk:    cfg.Net.Clock(),
		hosted: make(map[message.ClientID]*client.Client),
		source: make(map[message.TxID]*sourceTx),
		target: make(map[message.TxID]*targetTx),
		txgen:  message.NewIDGen("mv-" + string(cfg.Broker.ID())),
		stop:   make(chan struct{}),
	}
	cfg.Broker.SetControlSink(ct.handleControl)
	return ct
}

// Broker returns the broker this container is attached to.
func (ct *Container) Broker() *broker.Broker { return ct.cfg.Broker }

// Protocol returns the movement protocol in use.
func (ct *Container) Protocol() Protocol { return ct.cfg.Protocol }

// HostedCount returns the number of clients currently homed here.
func (ct *Container) HostedCount() int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return len(ct.hosted)
}

// Hosts reports whether the client is currently homed here.
func (ct *Container) Hosts(id message.ClientID) bool {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	_, ok := ct.hosted[id]
	return ok
}

// Shutdown stops the container's background goroutines. In-flight movement
// transactions are resolved with ErrShutdown.
func (ct *Container) Shutdown() {
	ct.mu.Lock()
	if ct.closed {
		ct.mu.Unlock()
		ct.wg.Wait()
		return
	}
	ct.closed = true
	close(ct.stop)
	for tx, st := range ct.source {
		// Disarm the move timer so it cannot fire into the stopped broker
		// after teardown; a callback already past its map lookup bails on
		// the closed flag.
		if st.timer != nil {
			st.timer.Stop()
		}
		st.finish(ErrShutdown)
		delete(ct.source, tx)
	}
	for tx, ttx := range ct.target {
		if ttx.timer != nil {
			ttx.timer.Stop()
		}
		delete(ct.target, tx)
	}
	ct.mu.Unlock()
	ct.wg.Wait()
}

// finish resolves the movement outcome exactly once.
func (st *sourceTx) finish(err error) {
	select {
	case st.done <- err:
	default:
	}
}

// NewClient creates a client homed at this container's broker, in the
// started state.
func (ct *Container) NewClient(id message.ClientID) (*client.Client, error) {
	c := client.New(id)
	c.SetClock(ct.clk)
	bid := ct.cfg.Broker.ID()
	node := message.ClientNode(id, bid)
	ct.cfg.Broker.AttachClient(node, c.DeliverLocal)
	if err := c.Attach(bid); err != nil {
		return nil, err
	}
	c.SetMover(ct)
	c.SetSender(ct.cfg.Broker.Inject)
	ct.installStateObserver(c)
	ct.installDeliveryObserver(c)
	ct.cfg.Directory.Put(c)
	ct.mu.Lock()
	ct.hosted[id] = c
	ct.mu.Unlock()
	ct.jnlClient(journal.KindClientAttach, "", id, string(bid))
	return c, nil
}

// Disconnect retracts the client's subscriptions and advertisements and
// detaches it from the broker.
func (ct *Container) Disconnect(c *client.Client) error {
	ct.mu.Lock()
	if ct.hosted[c.ID()] != c {
		ct.mu.Unlock()
		return ErrNotHosted
	}
	delete(ct.hosted, c.ID())
	ct.mu.Unlock()

	for id := range c.Subs() {
		_ = c.Unsubscribe(id)
	}
	for id := range c.Advs() {
		_ = c.Unadvertise(id)
	}
	node := message.ClientNode(c.ID(), ct.cfg.Broker.ID())
	ct.cfg.Broker.DetachClient(node)
	c.Close()
	ct.cfg.Directory.Delete(c.ID())
	return nil
}

var _ client.Mover = (*Container)(nil)

// RequestMove implements client.Mover: it starts a movement transaction for
// a hosted client toward the target broker and returns the outcome channel.
func (ct *Container) RequestMove(c *client.Client, target message.BrokerID) (<-chan error, error) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.closed {
		return nil, ErrShutdown
	}
	if ct.hosted[c.ID()] != c {
		return nil, ErrNotHosted
	}
	if !ct.cfg.Broker.CanRoute(target) {
		return nil, fmt.Errorf("unknown target broker %s", target)
	}
	if err := c.BeginMove(); err != nil {
		return nil, err
	}
	subs, advs := c.EntriesSnapshot()
	tx := message.TxID(ct.txgen.Next("x"))
	st := &sourceTx{
		tx:     tx,
		c:      c,
		target: target,
		subs:   subs,
		advs:   advs,
		start:  ct.clk.Now(),
		done:   make(chan error, 1),
		state:  sourceWait,
	}
	ct.source[tx] = st

	nego := message.MoveNegotiate{
		MoveHeader: message.MoveHeader{Tx: tx, Client: c.ID(), Source: ct.cfg.Broker.ID(), Target: target},
		Subs:       subs,
		Advs:       advs,
	}
	if err := ct.cfg.Broker.SendControl(nego); err != nil {
		delete(ct.source, tx)
		c.Resume()
		return nil, err
	}
	if ct.cfg.MoveTimeout > 0 {
		st.timer = ct.clk.AfterFunc(ct.cfg.MoveTimeout, func() { ct.sourceTimeout(tx) })
	}
	ct.emitLocked(EventMoveRequested, tx, c.ID(), string(target))
	ct.emitLocked(EventNegotiateSent, tx, c.ID(), "")
	return st.done, nil
}

// emitLocked emits while ct.mu is held (emit takes no lock, so this is now
// just an alias kept for call-site clarity).
func (ct *Container) emitLocked(kind EventKind, tx message.TxID, cl message.ClientID, detail string) {
	ct.emit(kind, tx, cl, detail)
}

// handleControl is the broker's control sink (runs on the broker
// goroutine).
func (ct *Container) handleControl(env message.Envelope) {
	switch m := env.Msg.(type) {
	case message.MoveNegotiate:
		ct.onNegotiate(m)
	case message.MoveApprove:
		ct.onApprove(m)
	case message.MoveReject:
		ct.onReject(m)
	case message.MoveState:
		ct.onState(m)
	case message.MoveAck:
		ct.onAck(m)
	case message.MoveAbort:
		ct.onAbort(m)
	case message.MoveQuery:
		ct.onQuery(m)
	case message.StandbyResolve:
		ct.onStandbyResolve(m)
	}
}

// HostedClients returns the clients currently homed in this container.
func (ct *Container) HostedClients() []*client.Client {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	out := make([]*client.Client, 0, len(ct.hosted))
	for _, c := range ct.hosted {
		out = append(out, c)
	}
	return out
}
