package core

import (
	"fmt"

	"padres/internal/broker"
	"padres/internal/message"
)

// Admission policies. The paper motivates rejection with broker overload
// and authorization (Sec. 3.1); these helpers compose the common cases into
// AdmissionFunc values for Container configuration.

// AdmitAll accepts every client (equivalent to a nil policy).
func AdmitAll() AdmissionFunc {
	return func(message.MoveNegotiate) error { return nil }
}

// QueueLengthAdmission rejects incoming clients while the broker's inbox
// exceeds maxQueue messages — the "broker is overloaded" rejection.
func QueueLengthAdmission(b *broker.Broker, maxQueue int) AdmissionFunc {
	return func(m message.MoveNegotiate) error {
		if q := b.QueueLen(); q > maxQueue {
			return fmt.Errorf("broker %s overloaded: queue length %d > %d", b.ID(), q, maxQueue)
		}
		return nil
	}
}

// DenyClients rejects the listed clients — the "client is not authorized"
// rejection.
func DenyClients(ids ...message.ClientID) AdmissionFunc {
	denied := make(map[message.ClientID]bool, len(ids))
	for _, id := range ids {
		denied[id] = true
	}
	return func(m message.MoveNegotiate) error {
		if denied[m.Client] {
			return fmt.Errorf("client %s is not authorized at this broker", m.Client)
		}
		return nil
	}
}

// MaxEntriesAdmission rejects clients carrying more than maxEntries
// subscriptions plus advertisements, bounding the routing state a movement
// can install.
func MaxEntriesAdmission(maxEntries int) AdmissionFunc {
	return func(m message.MoveNegotiate) error {
		if n := len(m.Subs) + len(m.Advs); n > maxEntries {
			return fmt.Errorf("client %s carries %d routing entries, limit %d", m.Client, n, maxEntries)
		}
		return nil
	}
}

// CombineAdmission applies policies in order; the first rejection wins.
func CombineAdmission(fns ...AdmissionFunc) AdmissionFunc {
	return func(m message.MoveNegotiate) error {
		for _, fn := range fns {
			if fn == nil {
				continue
			}
			if err := fn(m); err != nil {
				return err
			}
		}
		return nil
	}
}
