package core

import (
	"padres/internal/broker"
	"padres/internal/client"
	"padres/internal/journal"
	"padres/internal/message"
)

// The container journals through the network's flight recorder: protocol
// steps dual-write from emit, client lifecycle milestones (attach, arrive,
// depart) are recorded where they happen, and per-client delivery decisions
// flow through the stub's DeliveryObserver. Everything is nil-safe: with no
// journal installed these helpers cost one atomic load.

// journal returns the deployment's flight recorder, or nil when disabled.
func (ct *Container) journal() *journal.Journal { return ct.cfg.Net.Journal() }

// jnlClient records a client lifecycle milestone observed by this
// container's coordinator.
func (ct *Container) jnlClient(kind string, tx message.TxID, cl message.ClientID, detail string) {
	j := ct.journal()
	if j == nil {
		return
	}
	site := string(ct.cfg.Broker.ID())
	j.Add(journal.Record{
		Site: site, Cat: journal.CatClient, Kind: kind,
		Lamport: j.ClockOf(site).Tick(), Tx: string(tx), Client: string(cl), Detail: detail,
	})
}

// installDeliveryObserver journals every notification decision the client
// stub makes (queued, duplicate-suppressed, buffered). The client itself is
// the observing site; its records are what the auditor counts to verify
// app-level exactly-once delivery. The observer resolves the journal at
// event time, so it follows the client across containers.
func (ct *Container) installDeliveryObserver(c *client.Client) {
	net := ct.cfg.Net
	id := c.ID()
	c.SetDeliveryObserver(func(_ message.ClientID, pub message.PubID, outcome client.DeliveryOutcome) {
		j := net.Journal()
		if j == nil {
			return
		}
		var kind string
		switch outcome {
		case client.DeliveryDuplicate:
			kind = journal.KindClientDup
		case client.DeliveryBuffered:
			kind = journal.KindClientBuffer
		default:
			kind = journal.KindClientDeliver
		}
		site := string(id)
		j.Add(journal.Record{
			Site: site, Cat: journal.CatClient, Kind: kind,
			Lamport: j.ClockOf(site).Tick(), Client: string(id), Ref: string(pub),
		})
	})
}

// journalShellDeliver wraps the target shell's buffering callback so every
// publication parked for an in-flight movement is on the record.
func (ct *Container) journalShellDeliver(ttx *targetTx) broker.ClientDeliver {
	net := ct.cfg.Net
	site := string(ct.cfg.Broker.ID())
	return func(pub message.Publish) {
		if j := net.Journal(); j != nil {
			j.Add(journal.Record{
				Site: site, Cat: journal.CatClient, Kind: journal.KindShellBuffer,
				Lamport: j.ClockOf(site).Tick(), Tx: string(ttx.tx),
				Client: string(ttx.clientID), Ref: string(pub.ID),
			})
		}
		ttx.shellDeliver(pub)
	}
}
