package core_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"padres/internal/client"
	"padres/internal/core"
	"padres/internal/message"
	"padres/internal/predicate"
)

// TestEndToEndAbortRollsBackReissuedSubs: when an end-to-end movement
// aborts after the target has already re-issued the client's subscriptions
// under fresh IDs, the rollback must retract them everywhere — otherwise
// routing tables leak an entry per failed movement.
func TestEndToEndAbortRollsBackReissuedSubs(t *testing.T) {
	opts := moveOpts(core.ProtocolEndToEnd)
	opts.MoveTimeout = 250 * time.Millisecond
	c := newCluster(t, opts)
	pub, err := c.NewClient("pub", "b5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Advertise(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	sub, err := c.NewClient("sub", "b1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Subscribe(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	settle(t, c)

	// Freeze a broker on the control path: the negotiate stalls, the
	// source times out, and the abort chases the negotiate through the
	// same FIFO links — so the target prepares (re-issuing the
	// subscriptions) and then rolls back.
	c.Broker("b3").Pause()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	err = sub.Move(ctx, "b13")
	if !errors.Is(err, core.ErrMoveTimeout) {
		t.Fatalf("move = %v, want ErrMoveTimeout", err)
	}
	c.Broker("b3").Unpause()
	settle(t, c)

	// The client is operational at the source.
	if sub.Broker() != "b1" || sub.State() != client.StateStarted {
		t.Fatalf("client %s at %s after abort", sub.State(), sub.Broker())
	}
	// No epoch-reissued subscription survives anywhere (IDs carry '#').
	for _, bid := range c.Brokers() {
		for _, rec := range c.Broker(bid).PRTSnapshot() {
			if rec.Client == "sub" && strings.Contains(rec.ID, "#") {
				t.Errorf("broker %s leaked re-issued subscription %s after abort", bid, rec.ID)
			}
		}
	}
	// Delivery still works at the source.
	id, err := pub.Publish(predicate.Event{"x": predicate.Number(3)})
	if err != nil {
		t.Fatal(err)
	}
	settle(t, c)
	found := false
	for _, got := range sub.ReceivedIDs() {
		if got == id {
			found = true
		}
	}
	if !found {
		t.Error("notification lost after aborted end-to-end move")
	}
}

// TestEndToEndRepeatedMovesNoLeak: repeated end-to-end movements must not
// accumulate routing state — each move's fresh-ID subscription replaces the
// previous epoch everywhere.
func TestEndToEndRepeatedMovesNoLeak(t *testing.T) {
	c := newCluster(t, moveOpts(core.ProtocolEndToEnd))
	pub, err := c.NewClient("pub", "b5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Advertise(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	sub, err := c.NewClient("sub", "b1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Subscribe(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	settle(t, c)

	for i, target := range []string{"b13", "b1", "b13", "b1"} {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := sub.Move(ctx, message.BrokerID(target)); err != nil {
			cancel()
			t.Fatalf("move %d: %v", i, err)
		}
		cancel()
	}
	settle(t, c)

	// At most one subscription record for the client per broker.
	for _, bid := range c.Brokers() {
		count := 0
		for _, rec := range c.Broker(bid).PRTSnapshot() {
			if rec.Client == "sub" {
				count++
			}
		}
		if count > 1 {
			t.Errorf("broker %s holds %d subscription records for the client (epoch leak)", bid, count)
		}
	}
}
