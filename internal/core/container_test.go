package core_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"padres/internal/client"
	"padres/internal/cluster"
	"padres/internal/core"
	"padres/internal/message"
	"padres/internal/overlay"
	"padres/internal/predicate"
)

func newCluster(t *testing.T, opts cluster.Options) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func settle(t *testing.T, c *cluster.Cluster) {
	t.Helper()
	if err := c.SettleFor(20 * time.Second); err != nil {
		t.Fatalf("cluster did not settle: %v (inflight=%d)", err, c.Registry().Inflight())
	}
}

func mustMove(t *testing.T, cl *client.Client, target message.BrokerID) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cl.Move(ctx, target); err != nil {
		t.Fatalf("move to %s: %v", target, err)
	}
}

// publishN issues n publications [x, base+i] and returns their IDs.
func publishN(t *testing.T, pub *client.Client, n, base int) []message.PubID {
	t.Helper()
	ids := make([]message.PubID, 0, n)
	for i := 0; i < n; i++ {
		id, err := pub.Publish(predicate.Event{"x": predicate.Number(float64(base + i))})
		if err != nil {
			t.Fatalf("publish: %v", err)
		}
		ids = append(ids, id)
	}
	return ids
}

func assertReceivedExactly(t *testing.T, cl *client.Client, want []message.PubID) {
	t.Helper()
	got := make(map[message.PubID]bool)
	for _, id := range cl.ReceivedIDs() {
		got[id] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("notification %s lost", id)
		}
	}
	if len(got) != len(want) {
		t.Errorf("received %d distinct notifications, want %d", len(got), len(want))
	}
	if cl.QueueLen() != len(want) {
		t.Errorf("app queue has %d entries, want %d (duplicates would inflate this)", cl.QueueLen(), len(want))
	}
}

func moveOpts(p core.Protocol) cluster.Options {
	return cluster.Options{
		Protocol: p,
		Covering: p == core.ProtocolEndToEnd,
	}
}

func TestSubscriberMoveCommits(t *testing.T) {
	for _, proto := range []core.Protocol{core.ProtocolReconfig, core.ProtocolEndToEnd} {
		t.Run(proto.String(), func(t *testing.T) {
			c := newCluster(t, moveOpts(proto))
			pub, err := c.NewClient("pub", "b5")
			if err != nil {
				t.Fatal(err)
			}
			sub, err := c.NewClient("sub", "b1")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := pub.Advertise(predicate.MustParse("[x,>,0]")); err != nil {
				t.Fatal(err)
			}
			settle(t, c)
			if _, err := sub.Subscribe(predicate.MustParse("[x,>,10]")); err != nil {
				t.Fatal(err)
			}
			settle(t, c)

			before := publishN(t, pub, 3, 100)
			settle(t, c)

			mustMove(t, sub, "b13")
			settle(t, c)
			if got := sub.Broker(); got != "b13" {
				t.Fatalf("client homed at %s, want b13", got)
			}
			if !c.Container("b13").Hosts("sub") {
				t.Error("target container does not host the client")
			}
			if c.Container("b1").Hosts("sub") {
				t.Error("source container still hosts the client")
			}

			after := publishN(t, pub, 3, 200)
			settle(t, c)
			assertReceivedExactly(t, sub, append(before, after...))

			moves := c.Registry().Movements()
			if len(moves) != 1 || !moves[0].Committed {
				t.Fatalf("movements = %+v, want one committed", moves)
			}
			if moves[0].Protocol != proto.String() {
				t.Errorf("recorded protocol = %s, want %s", moves[0].Protocol, proto)
			}
		})
	}
}

func TestPublisherMoveCommits(t *testing.T) {
	for _, proto := range []core.Protocol{core.ProtocolReconfig, core.ProtocolEndToEnd} {
		t.Run(proto.String(), func(t *testing.T) {
			c := newCluster(t, moveOpts(proto))
			pub, err := c.NewClient("pub", "b1")
			if err != nil {
				t.Fatal(err)
			}
			sub, err := c.NewClient("sub", "b7")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := pub.Advertise(predicate.MustParse("[x,>,0]")); err != nil {
				t.Fatal(err)
			}
			settle(t, c)
			if _, err := sub.Subscribe(predicate.MustParse("[x,>,0]")); err != nil {
				t.Fatal(err)
			}
			settle(t, c)

			before := publishN(t, pub, 2, 10)
			settle(t, c)

			mustMove(t, pub, "b14")
			settle(t, c)

			after := publishN(t, pub, 2, 20)
			settle(t, c)
			assertReceivedExactly(t, sub, append(before, after...))
		})
	}
}

func TestNoLossDuringContinuousPublishing(t *testing.T) {
	// The notification consistency property (Sec. 3.4): a subscriber moving
	// while a publisher streams publications must receive every one of
	// them, exactly once, across repeated movements.
	for _, proto := range []core.Protocol{core.ProtocolReconfig, core.ProtocolEndToEnd} {
		t.Run(proto.String(), func(t *testing.T) {
			c := newCluster(t, moveOpts(proto))
			pub, err := c.NewClient("pub", "b5")
			if err != nil {
				t.Fatal(err)
			}
			sub, err := c.NewClient("sub", "b1")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := pub.Advertise(predicate.MustParse("[x,>,0]")); err != nil {
				t.Fatal(err)
			}
			settle(t, c)
			if _, err := sub.Subscribe(predicate.MustParse("[x,>,0]")); err != nil {
				t.Fatal(err)
			}
			settle(t, c)

			// Publisher streams in the background while the subscriber
			// bounces b1 -> b13 -> b2 -> b14.
			var (
				mu  sync.Mutex
				ids []message.PubID
			)
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					id, err := pub.Publish(predicate.Event{"x": predicate.Number(float64(i + 1))})
					if err == nil {
						mu.Lock()
						ids = append(ids, id)
						mu.Unlock()
					}
					i++
					time.Sleep(2 * time.Millisecond)
				}
			}()

			for _, target := range []message.BrokerID{"b13", "b2", "b14"} {
				mustMove(t, sub, target)
			}
			close(stop)
			<-done
			settle(t, c)

			mu.Lock()
			want := append([]message.PubID{}, ids...)
			mu.Unlock()
			assertReceivedExactly(t, sub, want)
		})
	}
}

func TestMoveRejectedByAdmission(t *testing.T) {
	opts := moveOpts(core.ProtocolReconfig)
	opts.Admission = func(m message.MoveNegotiate) error {
		if m.Target == "b13" {
			return errors.New("broker overloaded")
		}
		return nil
	}
	c := newCluster(t, opts)
	pub, err := c.NewClient("pub", "b5")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.NewClient("sub", "b1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Advertise(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	settle(t, c)
	if _, err := sub.Subscribe(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	settle(t, c)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sub.Move(ctx, "b13"); !errors.Is(err, core.ErrRejected) {
		t.Fatalf("Move = %v, want ErrRejected", err)
	}
	// Client stays at the source, fully operational (movement atomicity:
	// the failed transaction leaves the client at its source).
	if sub.Broker() != "b1" || sub.State() != client.StateStarted {
		t.Fatalf("client at %s in state %s after rejection", sub.Broker(), sub.State())
	}
	want := publishN(t, pub, 3, 50)
	settle(t, c)
	assertReceivedExactly(t, sub, want)

	// A later move to an admissible broker still works.
	mustMove(t, sub, "b14")
	more := publishN(t, pub, 2, 80)
	settle(t, c)
	assertReceivedExactly(t, sub, append(want, more...))
}

func TestMoveTimeoutAbortsAndResumes(t *testing.T) {
	opts := moveOpts(core.ProtocolReconfig)
	opts.MoveTimeout = 300 * time.Millisecond
	c := newCluster(t, opts)
	pub, err := c.NewClient("pub", "b5")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.NewClient("sub", "b1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Advertise(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	settle(t, c)
	if _, err := sub.Subscribe(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	settle(t, c)

	// Kill the target broker so the negotiate message dies; the source
	// coordinator's timeout must fire (non-blocking variant).
	c.Broker("b13").Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sub.Move(ctx, "b13"); !errors.Is(err, core.ErrMoveTimeout) {
		t.Fatalf("Move = %v, want ErrMoveTimeout", err)
	}
	if sub.Broker() != "b1" || sub.State() != client.StateStarted {
		t.Fatalf("client at %s in state %s after timeout", sub.Broker(), sub.State())
	}
	// Notifications published during and after the failed attempt arrive.
	want := publishN(t, pub, 3, 10)
	settle(t, c)
	assertReceivedExactly(t, sub, want)

	moves := c.Registry().Movements()
	if len(moves) != 1 || moves[0].Committed {
		t.Fatalf("movements = %+v, want one aborted", moves)
	}
}

func TestCommandsQueuedDuringMove(t *testing.T) {
	c := newCluster(t, moveOpts(core.ProtocolReconfig))
	pub, err := c.NewClient("pub", "b5")
	if err != nil {
		t.Fatal(err)
	}
	mover, err := c.NewClient("mover", "b1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Advertise(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	settle(t, c)

	// Subscribe while a movement is in flight: the command must be queued
	// and issued at the target broker after the move commits.
	moveDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		moveDone <- mover.Move(ctx, "b13")
	}()
	// Wait until the move has started (client paused).
	deadline := time.Now().Add(5 * time.Second)
	for mover.State() == client.StateStarted {
		if time.Now().After(deadline) {
			t.Fatal("move never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := mover.Subscribe(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatalf("subscribe during move: %v", err)
	}
	if _, err := mover.Publish(predicate.Event{"x": predicate.Number(1)}); err == nil {
		// Publications are also queued; the client has no advertisement so
		// the publication will be dropped by the broker, which is fine.
		_ = err
	}
	if err := <-moveDone; err != nil {
		t.Fatalf("move: %v", err)
	}
	settle(t, c)

	// The queued subscription took effect at the new broker.
	want := publishN(t, pub, 2, 100)
	settle(t, c)
	assertReceivedExactly(t, mover, want)
}

func TestConcurrentMovers(t *testing.T) {
	for _, proto := range []core.Protocol{core.ProtocolReconfig, core.ProtocolEndToEnd} {
		t.Run(proto.String(), func(t *testing.T) {
			c := newCluster(t, moveOpts(proto))
			pub, err := c.NewClient("pub", "b5")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := pub.Advertise(predicate.MustParse("[x,>,0]")); err != nil {
				t.Fatal(err)
			}
			settle(t, c)

			const n = 8
			subs := make([]*client.Client, n)
			for i := range subs {
				cl, err := c.NewClient(message.ClientID(fmt.Sprintf("c%d", i)), "b1")
				if err != nil {
					t.Fatal(err)
				}
				if _, err := cl.Subscribe(predicate.MustParse(fmt.Sprintf("[x,>,%d]", i))); err != nil {
					t.Fatal(err)
				}
				subs[i] = cl
			}
			settle(t, c)

			var wg sync.WaitGroup
			targets := []message.BrokerID{"b13", "b14", "b7", "b11"}
			for i, cl := range subs {
				wg.Add(1)
				go func(i int, cl *client.Client) {
					defer wg.Done()
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					defer cancel()
					if err := cl.Move(ctx, targets[i%len(targets)]); err != nil {
						t.Errorf("client %d move: %v", i, err)
					}
				}(i, cl)
			}
			wg.Wait()
			settle(t, c)

			want := publishN(t, pub, 3, 100)
			settle(t, c)
			for i, cl := range subs {
				got := cl.ReceivedIDs()
				if len(got) != len(want) {
					t.Errorf("client %d received %d notifications, want %d", i, len(got), len(want))
				}
			}
			stats := c.Registry().Stats()
			if stats.Committed != n {
				t.Errorf("committed movements = %d, want %d", stats.Committed, n)
			}
		})
	}
}

func TestMoveToSameBrokerFails(t *testing.T) {
	c := newCluster(t, moveOpts(core.ProtocolReconfig))
	cl, err := c.NewClient("c1", "b1")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := cl.Move(ctx, "b1"); !errors.Is(err, client.ErrSameBroker) {
		t.Errorf("Move to own broker = %v, want ErrSameBroker", err)
	}
}

func TestSecondMoveWhileMovingFails(t *testing.T) {
	c := newCluster(t, moveOpts(core.ProtocolReconfig))
	cl, err := c.NewClient("c1", "b1")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		done <- cl.Move(ctx, "b13")
	}()
	// Race a second move against the first. The two may interleave either
	// way, but the invariants are: at most one may fail, a failure must be
	// ErrMoving (the concurrency guard), and at least one must commit.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	err2 := cl.Move(ctx, "b14")
	err1 := <-done
	var failures int
	for _, err := range []error{err1, err2} {
		if err != nil {
			failures++
			if !errors.Is(err, client.ErrMoving) {
				t.Fatalf("unexpected move error: %v", err)
			}
		}
	}
	if failures > 1 {
		t.Fatalf("both moves failed: %v / %v", err1, err2)
	}
	if got := cl.Broker(); got != "b13" && got != "b14" {
		t.Fatalf("client ended at %s", got)
	}
}

func TestDisconnectRetractsState(t *testing.T) {
	c := newCluster(t, moveOpts(core.ProtocolReconfig))
	pub, err := c.NewClient("pub", "b1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Advertise(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	sub, err := c.NewClient("sub", "b13")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Subscribe(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	settle(t, c)

	if err := c.Container("b13").Disconnect(sub); err != nil {
		t.Fatal(err)
	}
	settle(t, c)
	for _, bid := range c.Brokers() {
		for _, rec := range c.Broker(bid).PRTSnapshot() {
			if rec.Client == "sub" {
				t.Errorf("broker %s still has subscription %s after disconnect", bid, rec.ID)
			}
		}
	}
	if _, err := sub.Subscribe(predicate.MustParse("[x,>,0]")); !errors.Is(err, client.ErrClosed) {
		t.Errorf("Subscribe after disconnect = %v, want ErrClosed", err)
	}
}

func TestRoutingIsolationAcrossMove(t *testing.T) {
	// Sec. 3.5 isolation: a movement only touches the moving client's
	// routing entries. Checked here through the full protocol stack.
	c := newCluster(t, moveOpts(core.ProtocolReconfig))
	pub, err := c.NewClient("pub", "b5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Advertise(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	mover, err := c.NewClient("mover", "b1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mover.Subscribe(predicate.MustParse("[x,>,5]")); err != nil {
		t.Fatal(err)
	}
	bystander, err := c.NewClient("bystander", "b7")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bystander.Subscribe(predicate.MustParse("[x,>,3]")); err != nil {
		t.Fatal(err)
	}
	settle(t, c)

	type entry struct {
		hop message.NodeID
		ok  bool
	}
	before := make(map[message.BrokerID]map[string]entry)
	for _, bid := range c.Brokers() {
		m := make(map[string]entry)
		for _, rec := range c.Broker(bid).PRTSnapshot() {
			if rec.Client != "mover" {
				m[rec.ID] = entry{hop: rec.LastHop, ok: true}
			}
		}
		for _, rec := range c.Broker(bid).SRTSnapshot() {
			if rec.Client != "mover" {
				m["adv:"+rec.ID] = entry{hop: rec.LastHop, ok: true}
			}
		}
		before[bid] = m
	}

	mustMove(t, mover, "b13")
	settle(t, c)

	for _, bid := range c.Brokers() {
		after := make(map[string]entry)
		for _, rec := range c.Broker(bid).PRTSnapshot() {
			if rec.Client != "mover" {
				after[rec.ID] = entry{hop: rec.LastHop, ok: true}
			}
		}
		for _, rec := range c.Broker(bid).SRTSnapshot() {
			if rec.Client != "mover" {
				after["adv:"+rec.ID] = entry{hop: rec.LastHop, ok: true}
			}
		}
		if len(after) != len(before[bid]) {
			t.Errorf("broker %s: bystander entry count changed %d -> %d", bid, len(before[bid]), len(after))
			continue
		}
		for id, e := range before[bid] {
			if after[id] != e {
				t.Errorf("broker %s: bystander entry %s changed %v -> %v", bid, id, e, after[id])
			}
		}
	}
}

func TestRepeatedOscillation(t *testing.T) {
	// A client oscillating many times (the experiment workload) must stay
	// consistent and keep exactly-once delivery.
	c := newCluster(t, moveOpts(core.ProtocolReconfig))
	pub, err := c.NewClient("pub", "b5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Advertise(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	sub, err := c.NewClient("sub", "b1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Subscribe(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	settle(t, c)

	var want []message.PubID
	targets := []message.BrokerID{"b13", "b1", "b13", "b1", "b13"}
	for round, target := range targets {
		want = append(want, publishN(t, pub, 2, 100*(round+1))...)
		mustMove(t, sub, target)
	}
	settle(t, c)
	want = append(want, publishN(t, pub, 2, 9000)...)
	settle(t, c)
	assertReceivedExactly(t, sub, want)

	stats := c.Registry().Stats()
	if stats.Committed != len(targets) {
		t.Errorf("committed = %d, want %d", stats.Committed, len(targets))
	}
}

var _ = overlay.Default14 // referenced to keep the import for future tests
