package core_test

import (
	"context"
	"testing"
	"time"

	"padres/internal/broker"
	"padres/internal/client"
	"padres/internal/core"
	"padres/internal/message"
	"padres/internal/metrics"
	"padres/internal/overlay"
	"padres/internal/predicate"
	"padres/internal/transport"
)

// procBroker is one process-equivalent: its own registry, network, broker,
// container with its own directory, and a TCP gateway. Nothing is shared
// with the other brokers except sockets.
type procBroker struct {
	id  message.BrokerID
	b   *broker.Broker
	ct  *core.Container
	dir *core.Directory
	net *transport.Network
	gw  *transport.Gateway
}

func startProcBroker(t *testing.T, id message.BrokerID, top *overlay.Topology) *procBroker {
	t.Helper()
	reg := metrics.NewRegistry()
	nw := transport.NewNetwork(reg)
	hops, err := top.NextHops(id)
	if err != nil {
		t.Fatal(err)
	}
	b, err := broker.New(broker.Config{
		ID:        id,
		Net:       nw,
		Neighbors: top.Neighbors(id),
		NextHops:  hops,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := core.NewDirectory()
	ct := core.NewContainer(core.Config{
		Broker:    b,
		Net:       nw,
		Directory: dir,
		Protocol:  core.ProtocolReconfig,
	})
	b.Start()
	gw, err := transport.NewGateway(transport.GatewayConfig{
		Net:    nw,
		Local:  id.Node(),
		Broker: b,
		Listen: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	pb := &procBroker{id: id, b: b, ct: ct, dir: dir, net: nw, gw: gw}
	t.Cleanup(func() {
		gw.Close()
		ct.Shutdown()
		b.Stop()
		nw.Close()
	})
	return pb
}

func await(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCrossProcessMobility moves a client between brokers that share
// nothing but TCP connections: the client's stub state travels inside the
// MoveState message and is reconstructed at the target, as the paper's
// protocol prescribes.
func TestCrossProcessMobility(t *testing.T) {
	top, err := overlay.Linear(3)
	if err != nil {
		t.Fatal(err)
	}
	b1 := startProcBroker(t, "b1", top)
	b2 := startProcBroker(t, "b2", top)
	b3 := startProcBroker(t, "b3", top)
	for _, pair := range []struct {
		from *procBroker
		to   *procBroker
	}{{b1, b2}, {b3, b2}} {
		if err := pair.from.gw.DialPeer(pair.to.id.Node(), pair.to.gw.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := pair.from.gw.StartPeerReader(pair.to.id.Node()); err != nil {
			t.Fatal(err)
		}
	}

	// Publisher lives at b3's container; the mobile subscriber at b1's.
	pub, err := b3.ct.NewClient("pub")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Advertise(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	await(t, "advertisement at b1", func() bool { return len(b1.b.SRTSnapshot()) == 1 })

	sub, err := b1.ct.NewClient("sub")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Subscribe(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	await(t, "subscription at b3", func() bool { return len(b3.b.PRTSnapshot()) >= 1 })

	if _, err := pub.Publish(predicate.Event{"x": predicate.Number(1)}); err != nil {
		t.Fatal(err)
	}
	await(t, "first notification", func() bool { return sub.QueueLen() == 1 })

	// Move the subscriber b1 -> b3 across process boundaries.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := sub.Move(ctx, "b3"); err != nil {
		t.Fatalf("cross-process move: %v", err)
	}

	// The client now lives in b3's directory as a reconstructed stub.
	moved := b3.dir.Get("sub")
	if moved == nil {
		t.Fatal("client not reconstructed at the target process")
	}
	if moved == sub {
		t.Fatal("client object shared across processes; state transfer not exercised")
	}
	await(t, "client started at b3", func() bool {
		return moved.State() == client.StateStarted && moved.Broker() == "b3"
	})
	if !b3.ct.Hosts("sub") {
		t.Error("target container does not host the client")
	}
	// The delivery history travelled with the stub: the pre-move
	// notification is not re-delivered, and its queue content moved over.
	if got := moved.QueueLen(); got != 1 {
		t.Errorf("reconstructed queue = %d, want 1 (undelivered notification)", got)
	}

	// New publications reach the client at its new home, exactly once.
	if _, err := pub.Publish(predicate.Event{"x": predicate.Number(2)}); err != nil {
		t.Fatal(err)
	}
	await(t, "post-move notification", func() bool { return moved.QueueLen() == 2 })
	if len(moved.ReceivedIDs()) != 2 {
		t.Errorf("delivery history = %d entries, want 2", len(moved.ReceivedIDs()))
	}

	// The subscriber can issue commands from its new process.
	if _, err := moved.Publish(predicate.Event{"y": predicate.Number(1)}); err != nil {
		t.Errorf("reconstructed client cannot publish: %v", err)
	}
}

// TestClientStateSerializationRoundTrip unit-tests the stub serialization.
func TestClientStateSerializationRoundTrip(t *testing.T) {
	c := client.New("c1")
	if err := c.Attach("b1"); err != nil {
		t.Fatal(err)
	}
	sent := 0
	c.SetSender(func(message.NodeID, message.Message) { sent++ })
	subID, err := c.Subscribe(predicate.MustParse("[x,>,0]"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Advertise(predicate.MustParse("[y,>,0]")); err != nil {
		t.Fatal(err)
	}
	c.DeliverLocal(message.Publish{ID: "p1"})
	if err := c.BeginMove(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Publish(predicate.Event{"x": predicate.Number(1)}); err != nil {
		t.Fatal(err) // queued while moving
	}

	data, err := c.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := client.Deserialize(data)
	if err != nil {
		t.Fatal(err)
	}
	if c2.ID() != "c1" || c2.State() != client.StatePauseMove {
		t.Fatalf("restored: %s in %s", c2.ID(), c2.State())
	}
	if _, ok := c2.Subs()[subID]; !ok {
		t.Error("subscription lost in serialization")
	}
	if len(c2.Advs()) != 1 {
		t.Error("advertisement lost")
	}
	if c2.QueueLen() != 1 {
		t.Errorf("queue = %d, want 1", c2.QueueLen())
	}
	// Dedup history survived: re-delivering p1 must be dropped.
	c2.DeliverLocal(message.Publish{ID: "p1"})
	// (delivered during pause -> transfer buffer; complete and check)
	flushed := 0
	c2.SetSender(func(message.NodeID, message.Message) { flushed++ })
	if err := c2.CompleteMove("b9", nil, nil); err != nil {
		t.Fatal(err)
	}
	if c2.QueueLen() != 1 {
		t.Errorf("duplicate crossed serialization: queue = %d", c2.QueueLen())
	}
	if flushed != 1 {
		t.Errorf("pending commands flushed = %d, want 1", flushed)
	}
	// ID generator continued, no collisions with pre-move IDs.
	id2, err := c2.Publish(predicate.Event{"x": predicate.Number(2)})
	if err != nil {
		t.Fatal(err)
	}
	if id2 == "c1-p3" {
		// p3 was issued pre-serialization (s1, a2, p3... counter must be
		// beyond it). Exact value depends on the counter; just ensure the
		// counter moved past the pre-move publish.
		t.Errorf("identifier collision after restore: %s", id2)
	}
	if _, err := client.Deserialize([]byte("junk")); err == nil {
		t.Error("garbage deserialized")
	}
}
