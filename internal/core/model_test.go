package core

import (
	"testing"

	"padres/internal/client"
)

// started counts how many client copies are started in a global state.
func started(g GlobalState) int {
	n := 0
	if g.SrcClient == client.StateStarted {
		n++
	}
	if g.TgtClient == client.StateStarted {
		n++
	}
	return n
}

// TestGlobalStateGraphHappyPath explores the protocol without rejections or
// timeouts: the only final state is the committed one.
func TestGlobalStateGraphHappyPath(t *testing.T) {
	g := Model{}.Explore()
	if len(g.Finals) != 1 {
		t.Fatalf("finals = %d, want 1: %v", len(g.Finals), finalsOf(g))
	}
	f := g.Finals[0]
	if f.Src != CoordCommit || f.Tgt != CoordCommit {
		t.Errorf("final coordinators = %s/%s, want commit/commit", f.Src, f.Tgt)
	}
	if f.SrcClient != client.StateCleaned || f.TgtClient != client.StateStarted {
		t.Errorf("final clients = %s/%s, want cleaned/started", f.SrcClient, f.TgtClient)
	}
	// The happy path of Fig. 5 visits 5 global coordinator states
	// (wS,iT -> wS,pT -> pS,pT -> pS,cT -> cS,cT).
	if len(g.States) != 5 {
		t.Errorf("reachable states = %d, want 5: %v", len(g.States), keysOf(g))
	}
}

// TestGlobalStateGraphWithReject reproduces Fig. 5: acceptance and
// rejection paths, two final states.
func TestGlobalStateGraphWithReject(t *testing.T) {
	g := Model{AllowReject: true}.Explore()
	if len(g.Finals) != 2 {
		t.Fatalf("finals = %d, want 2: %v", len(g.Finals), finalsOf(g))
	}
	var sawCommit, sawAbort bool
	for _, f := range g.Finals {
		switch {
		case f.Src == CoordCommit && f.Tgt == CoordCommit:
			sawCommit = true
			if f.SrcClient != client.StateCleaned || f.TgtClient != client.StateStarted {
				t.Errorf("commit final clients = %s/%s", f.SrcClient, f.TgtClient)
			}
		case f.Src == CoordAbort && f.Tgt == CoordAbort:
			sawAbort = true
			if f.SrcClient != client.StateStarted {
				t.Errorf("abort final source client = %s, want started", f.SrcClient)
			}
			if f.TgtClient == client.StateStarted {
				t.Errorf("abort final target client started")
			}
		default:
			t.Errorf("unexpected final %s", f.Key())
		}
	}
	if !sawCommit || !sawAbort {
		t.Errorf("missing outcome: commit=%v abort=%v", sawCommit, sawAbort)
	}
	// Fig. 5's graph has 7 coordinator-level states; our encoding also
	// tracks client states and message multisets but collapses to the same
	// set of seven coordinator combinations.
	coordStates := make(map[string]bool)
	for _, st := range g.States {
		coordStates[st.Src.String()+"/"+st.Tgt.String()] = true
	}
	want := map[string]bool{
		"wait/init":       true,
		"wait/prepare":    true,
		"prepare/prepare": true,
		"prepare/commit":  true,
		"commit/commit":   true,
		"abort/abort":     true,
		"wait/abort":      true,
	}
	for k := range want {
		if !coordStates[k] {
			t.Errorf("coordinator state %s unreachable", k)
		}
	}
	for k := range coordStates {
		if !want[k] {
			t.Errorf("unexpected coordinator state %s", k)
		}
	}
}

// TestGlobalStatePropertyAtMostOneStarted verifies property (2) of Sec. 4.2
// over every reachable state, in every model variant: at most one client
// copy is ever started, and in intermediate states of a movement that has
// passed the negotiate step, publications cannot be issued from both sides.
func TestGlobalStatePropertyAtMostOneStarted(t *testing.T) {
	variants := []Model{
		{},
		{AllowReject: true},
		{AllowTimeout: true},
		{AllowReject: true, AllowTimeout: true},
	}
	for _, m := range variants {
		g := m.Explore()
		for key, st := range g.States {
			if started(st) > 1 {
				t.Errorf("model %+v: state %s has two started clients", m, key)
			}
		}
	}
}

// TestGlobalStatePropertyFinalExactlyOne verifies property (1): every final
// state has exactly one live client copy — started at the target on commit,
// started at the source on abort.
func TestGlobalStatePropertyFinalExactlyOne(t *testing.T) {
	variants := []Model{
		{},
		{AllowReject: true},
		{AllowTimeout: true},
		{AllowReject: true, AllowTimeout: true},
	}
	for _, m := range variants {
		g := m.Explore()
		if len(g.Finals) == 0 {
			t.Fatalf("model %+v has no final states", m)
		}
		for _, f := range g.Finals {
			if started(f) != 1 {
				t.Errorf("model %+v: final %s has %d started clients, want 1", m, f.Key(), started(f))
			}
			committed := f.Src == CoordCommit
			if committed && f.TgtClient != client.StateStarted {
				t.Errorf("model %+v: committed final %s target not started", m, f.Key())
			}
			if !committed && f.SrcClient != client.StateStarted {
				t.Errorf("model %+v: aborted final %s source not started", m, f.Key())
			}
		}
	}
}

// TestGlobalStateGraphTimeoutTerminates: with timeouts enabled every
// execution path still ends in a final state (no deadlocked intermediate
// states without outgoing transitions).
func TestGlobalStateGraphTimeoutTerminates(t *testing.T) {
	g := Model{AllowReject: true, AllowTimeout: true}.Explore()
	for key, st := range g.States {
		if st.Final() {
			continue
		}
		if len(g.Edges[key]) == 0 {
			t.Errorf("non-final state %s has no outgoing transitions (protocol can block)", key)
		}
	}
}

// TestModelStrings exercises the display helpers.
func TestModelStrings(t *testing.T) {
	if CoordWait.String() != "wait" || CoordState(99).String() != "coord(99)" {
		t.Error("CoordState.String wrong")
	}
	if MsgNego.String() != "nego" || ModelMsg(99).String() != "msg(99)" {
		t.Error("ModelMsg.String wrong")
	}
	g := GlobalState{Src: CoordWait, Tgt: CoordInit, SrcClient: client.StatePauseMove, TgtClient: client.StateInit, Msgs: "nego"}
	if g.Key() != "wS,iT|pause_move,init|nego" {
		t.Errorf("Key() = %q", g.Key())
	}
}

func finalsOf(g *Graph) []string {
	out := make([]string, 0, len(g.Finals))
	for _, f := range g.Finals {
		out = append(out, f.Key())
	}
	return out
}

func keysOf(g *Graph) []string {
	out := make([]string, 0, len(g.States))
	for k := range g.States {
		out = append(out, k)
	}
	return out
}
