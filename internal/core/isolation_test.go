package core_test

import (
	"context"
	"sort"
	"testing"
	"time"

	"padres/internal/client"
	"padres/internal/cluster"
	"padres/internal/core"
	"padres/internal/message"
	"padres/internal/predicate"
)

// runBystanderScenario runs a fixed scenario — a publisher streams a fixed
// sequence while a third client either moves or stays — and returns the
// sorted notification IDs observed by the bystander subscriber.
func runBystanderScenario(t *testing.T, proto core.Protocol, moverMoves bool) []message.PubID {
	t.Helper()
	c := newCluster(t, moveOpts(proto))
	pub, err := c.NewClient("pub", "b5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Advertise(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatal(err)
	}
	settle(t, c)

	bystander, err := c.NewClient("bystander", "b7")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bystander.Subscribe(predicate.MustParse("[x,>,0],[x,<,50]")); err != nil {
		t.Fatal(err)
	}
	mover, err := c.NewClient("mover", "b1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mover.Subscribe(predicate.MustParse("[x,>,25]")); err != nil {
		t.Fatal(err)
	}
	settle(t, c)

	// Fixed publication sequence; the mover relocates midway (or not).
	for i := 1; i <= 40; i++ {
		if _, err := pub.Publish(predicate.Event{"x": predicate.Number(float64(i))}); err != nil {
			t.Fatal(err)
		}
		if i == 20 && moverMoves {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			if err := mover.Move(ctx, "b13"); err != nil {
				cancel()
				t.Fatalf("mover: %v", err)
			}
			cancel()
		}
	}
	settle(t, c)

	ids := bystander.ReceivedIDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestNotificationIsolation verifies the Sec. 3.4 isolation property: the
// notifications received by a bystander client are identical whether or not
// another client performs a movement transaction.
func TestNotificationIsolation(t *testing.T) {
	for _, proto := range []core.Protocol{core.ProtocolReconfig, core.ProtocolEndToEnd} {
		t.Run(proto.String(), func(t *testing.T) {
			withMove := runBystanderScenario(t, proto, true)
			withoutMove := runBystanderScenario(t, proto, false)
			if len(withMove) != len(withoutMove) {
				t.Fatalf("bystander saw %d notifications with the move, %d without",
					len(withMove), len(withoutMove))
			}
			for i := range withMove {
				if withMove[i] != withoutMove[i] {
					t.Fatalf("bystander streams diverge at %d: %s vs %s",
						i, withMove[i], withoutMove[i])
				}
			}
			// Sanity: the bystander received the x<50 subset (all 40 here).
			if len(withMove) != 40 {
				t.Fatalf("bystander received %d of 40", len(withMove))
			}
		})
	}
}

// TestMoveToUnknownBroker exercises the control-routing failure path: the
// negotiate cannot be routed, so the move fails fast.
func TestMoveToUnknownBroker(t *testing.T) {
	c := newCluster(t, moveOpts(core.ProtocolReconfig))
	cl, err := c.NewClient("c1", "b1")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err = cl.Move(ctx, "b99")
	if err == nil {
		t.Fatal("move to unknown broker succeeded")
	}
	// The failure is upfront (no transaction started) and the client is
	// fully operational afterwards.
	if cl.State() != client.StateStarted {
		t.Fatalf("client state after failed move = %s", cl.State())
	}
	if _, err := cl.Subscribe(predicate.MustParse("[x,>,0]")); err != nil {
		t.Fatalf("client unusable after failed move: %v", err)
	}
}

// TestMoveAfterDisconnect verifies a disconnected client cannot move.
func TestMoveAfterDisconnect(t *testing.T) {
	c := newCluster(t, moveOpts(core.ProtocolReconfig))
	cl, err := c.NewClient("c1", "b1")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Container("b1").Disconnect(cl); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := cl.Move(ctx, "b13"); err == nil {
		t.Fatal("disconnected client moved")
	}
}

// TestHostedCount tracks container ownership across a move.
func TestHostedCount(t *testing.T) {
	c := newCluster(t, moveOpts(core.ProtocolReconfig))
	cl, err := c.NewClient("c1", "b1")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Container("b1").HostedCount(); got != 1 {
		t.Fatalf("source hosted = %d", got)
	}
	mustMove(t, cl, "b13")
	settle(t, c)
	if got := c.Container("b1").HostedCount(); got != 0 {
		t.Errorf("source hosted after move = %d", got)
	}
	if got := c.Container("b13").HostedCount(); got != 1 {
		t.Errorf("target hosted after move = %d", got)
	}
}

var _ = cluster.Options{}
