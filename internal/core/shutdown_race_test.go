package core_test

import (
	"testing"
	"time"

	"padres/internal/cluster"
	"padres/internal/core"
	"padres/internal/message"
	"padres/internal/overlay"
	"padres/internal/predicate"
)

// TestMoveTimerShutdownRace is the regression test for move timers firing
// after teardown: it starts movements with a timeout short enough to still
// be pending at shutdown (the target broker is paused so the negotiation
// cannot complete), then tears the whole cluster down immediately. A timer
// that fires into a stopped broker or a shut-down container would panic or
// trip the race detector; the pending movement must instead resolve with
// ErrShutdown and the late timer must be a no-op.
func TestMoveTimerShutdownRace(t *testing.T) {
	for round := 0; round < 5; round++ {
		top := overlay.New()
		for _, id := range []message.BrokerID{"b1", "b2", "b3"} {
			if err := top.AddBroker(id); err != nil {
				t.Fatal(err)
			}
		}
		if err := top.Connect("b1", "b2"); err != nil {
			t.Fatal(err)
		}
		if err := top.Connect("b2", "b3"); err != nil {
			t.Fatal(err)
		}
		c, err := cluster.New(cluster.Options{
			Topology:    top,
			MoveTimeout: 30 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Start()

		mover, err := c.NewClient("m", "b1")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mover.Subscribe(predicate.MustParse("[x,>,0]")); err != nil {
			t.Fatal(err)
		}
		if err := c.SettleFor(10 * time.Second); err != nil {
			t.Fatal(err)
		}

		// Pause the target so the negotiate is never answered and the
		// source timer stays armed.
		c.Broker("b3").Pause()
		done, err := c.Container("b1").RequestMove(mover, "b3")
		if err != nil {
			t.Fatal(err)
		}

		// Race the pending timer against teardown. Alternate between
		// stopping just before and just after the timeout elapses.
		if round%2 == 1 {
			time.Sleep(25 * time.Millisecond)
		}
		c.Broker("b3").Unpause()
		c.Stop()

		select {
		case errMove := <-done:
			switch errMove {
			case core.ErrShutdown, core.ErrMoveTimeout, nil:
				// Shutdown resolved it, the timer beat the shutdown, or the
				// movement squeaked through — all legal; the invariant under
				// test is the absence of panics and data races.
			default:
				t.Fatalf("round %d: unexpected movement outcome: %v", round, errMove)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: movement outcome never resolved", round)
		}
		// Give any stray timer a beat to fire against the torn-down
		// cluster before the next round (the race detector watches).
		time.Sleep(50 * time.Millisecond)
	}
}
