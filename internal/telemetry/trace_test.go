package telemetry

import (
	"testing"
	"time"

	"padres/internal/message"
)

func ts(i int) time.Time { return time.Unix(1000, 0).Add(time.Duration(i) * time.Millisecond) }

func TestTraceStoreRecordAndGet(t *testing.T) {
	s := NewTraceStore(0, 0)
	if seq := s.RecordHop("pub:p1", "b1", "b2", message.KindPublish, ts(1)); seq != 1 {
		t.Fatalf("seq = %d, want 1", seq)
	}
	if seq := s.RecordHop("pub:p1", "b2", "b3", message.KindPublish, ts(2)); seq != 2 {
		t.Fatalf("seq = %d, want 2", seq)
	}

	tr, ok := s.Get("pub:p1")
	if !ok {
		t.Fatal("trace not found")
	}
	if len(tr.Hops) != 2 || tr.Hops[0].From != "b1" || tr.Hops[1].To != "b3" {
		t.Fatalf("hops = %+v", tr.Hops)
	}
	if !tr.FirstSeen.Equal(ts(1)) || !tr.LastSeen.Equal(ts(2)) {
		t.Fatalf("first/last = %v/%v", tr.FirstSeen, tr.LastSeen)
	}
	if _, ok := s.Get("pub:unknown"); ok {
		t.Fatal("unknown trace found")
	}
}

func TestTraceStoreIgnoresEmptyID(t *testing.T) {
	s := NewTraceStore(0, 0)
	if seq := s.RecordHop("", "b1", "b2", message.KindPublish, ts(1)); seq != 0 {
		t.Fatalf("seq = %d, want 0", seq)
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d, want 0", s.Len())
	}
}

func TestTraceStoreEviction(t *testing.T) {
	s := NewTraceStore(2, 0)
	s.RecordHop("pub:p1", "b1", "b2", message.KindPublish, ts(1))
	s.RecordHop("pub:p2", "b1", "b2", message.KindPublish, ts(2))
	s.RecordHop("pub:p3", "b1", "b2", message.KindPublish, ts(3))

	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	if s.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1", s.Evicted())
	}
	if _, ok := s.Get("pub:p1"); ok {
		t.Fatal("oldest trace not evicted")
	}
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0].ID != "pub:p2" || snap[1].ID != "pub:p3" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestTraceStoreHopTruncation(t *testing.T) {
	s := NewTraceStore(0, 3)
	for i := 1; i <= 5; i++ {
		s.RecordHop("tx:x1", "b1", "b2", message.KindMoveNegotiate, ts(i))
	}
	tr, _ := s.Get("tx:x1")
	if len(tr.Hops) != 3 {
		t.Fatalf("hops = %d, want 3", len(tr.Hops))
	}
	if tr.TruncatedHops != 2 {
		t.Fatalf("truncated = %d, want 2", tr.TruncatedHops)
	}
	// Sequence numbers keep counting past the bound.
	if seq := s.RecordHop("tx:x1", "b1", "b2", message.KindMoveNegotiate, ts(6)); seq != 6 {
		t.Fatalf("seq = %d, want 6", seq)
	}
	// LastSeen still advances for truncated hops.
	tr, _ = s.Get("tx:x1")
	if !tr.LastSeen.Equal(ts(6)) {
		t.Fatalf("last seen = %v, want %v", tr.LastSeen, ts(6))
	}
}

func TestTraceStoreSnapshotIsCopy(t *testing.T) {
	s := NewTraceStore(0, 0)
	s.RecordHop("pub:p1", "b1", "b2", message.KindPublish, ts(1))
	snap := s.Snapshot()
	snap[0].Hops[0].From = "mutated"
	tr, _ := s.Get("pub:p1")
	if tr.Hops[0].From != "b1" {
		t.Fatal("snapshot aliases the store")
	}
}

func TestTraceOf(t *testing.T) {
	cases := []struct {
		m    message.Message
		want message.TraceID
	}{
		{message.Publish{ID: "p1"}, "pub:p1"},
		{message.Subscribe{ID: "s1"}, "sub:s1"},
		{message.Unsubscribe{ID: "s1"}, "unsub:s1"},
		{message.Advertise{ID: "a1"}, "adv:a1"},
		{message.Unadvertise{ID: "a1"}, "unadv:a1"},
		{message.MoveAck{MoveHeader: message.MoveHeader{Tx: "x1"}}, "tx:x1"},
	}
	for _, c := range cases {
		if got := message.TraceOf(c.m); got != c.want {
			t.Errorf("TraceOf(%T) = %q, want %q", c.m, got, c.want)
		}
	}
}
