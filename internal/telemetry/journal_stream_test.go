package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"padres/internal/journal"
)

// TestJournalCursorSurvivesOverflow is the regression for the Lamport
// cursor: a pagination started before a ring overflow resumes correctly
// after it — no duplicates, no stale positions — and the envelope's dropped
// count tells the client the records below its cursor are gone.
func TestJournalCursorSurvivesOverflow(t *testing.T) {
	r := newTestRegistry(t)
	j := journal.New(8)
	r.SetJournal(j)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	add := func(lo, hi uint64) {
		for lam := lo; lam <= hi; lam++ {
			j.Add(journal.Record{Run: 1, Site: "b1", Cat: journal.CatBroker, Kind: journal.KindDispatch, Lamport: lam})
		}
	}
	add(1, 8) // fills the ring exactly

	var p struct {
		Total     int              `json:"total"`
		Count     int              `json:"count"`
		NextAfter string           `json:"next_after"`
		Dropped   uint64           `json:"dropped"`
		Records   []journal.Record `json:"records"`
	}
	_, body := get(t, srv, "/journal?limit=4")
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("page 1: %v\n%s", err, body)
	}
	if p.Count != 4 || p.Dropped != 0 || p.Records[3].Lamport != 4 {
		t.Fatalf("page 1 = %+v", p)
	}
	cursor := p.NextAfter

	// The ring overflows completely between the two pages: records 1-8 are
	// overwritten by 9-16.
	add(9, 16)

	_, body = get(t, srv, "/journal?limit=4&after="+cursor)
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("page 2: %v\n%s", err, body)
	}
	if p.Dropped != 8 {
		t.Fatalf("dropped = %d, want 8", p.Dropped)
	}
	if p.Count != 4 {
		t.Fatalf("page 2 count = %d (%+v)", p.Count, p.Records)
	}
	for i, rec := range p.Records {
		// Records 5-8 were lost to the overwrite (reported via dropped);
		// the survivors past the cursor start at 9. A ring-index cursor
		// would have re-served or skipped arbitrary records here.
		if want := uint64(9 + i); rec.Lamport != want {
			t.Fatalf("page 2 record %d lamport = %d, want %d", i, rec.Lamport, want)
		}
	}
}

// streamLines opens /journal/stream and returns a line reader plus a
// cancel that tears the request down.
func streamLines(t *testing.T, srv *httptest.Server, query string) (*bufio.Scanner, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/journal/stream"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		cancel()
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	t.Cleanup(func() { cancel(); _ = resp.Body.Close() })
	return bufio.NewScanner(resp.Body), cancel
}

func nextRecord(t *testing.T, sc *bufio.Scanner) journal.Record {
	t.Helper()
	if !sc.Scan() {
		t.Fatalf("stream ended early: %v", sc.Err())
	}
	var rec journal.Record
	if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
		t.Fatalf("bad stream line %q: %v", sc.Text(), err)
	}
	return rec
}

// TestJournalStreamTailsLiveAppends: the stream replays the ring then keeps
// delivering new appends on the open response.
func TestJournalStreamTailsLiveAppends(t *testing.T) {
	r := newTestRegistry(t)
	j := journal.New(0)
	r.SetJournal(j)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	for lam := uint64(1); lam <= 3; lam++ {
		j.Add(journal.Record{Run: 1, Site: "b1", Cat: journal.CatBroker, Kind: journal.KindDispatch, Lamport: lam})
	}
	sc, cancel := streamLines(t, srv, "")
	for lam := uint64(1); lam <= 3; lam++ {
		if rec := nextRecord(t, sc); rec.Lamport != lam {
			t.Fatalf("snapshot replay lamport = %d, want %d", rec.Lamport, lam)
		}
	}

	// Live phase: appends after the snapshot flow down the same response.
	j.Add(journal.Record{Run: 1, Site: "b2", Cat: journal.CatBroker, Kind: journal.KindDeliver, Lamport: 4, Ref: "p1"})
	if rec := nextRecord(t, sc); rec.Lamport != 4 || rec.Kind != journal.KindDeliver {
		t.Fatalf("live record = %+v", rec)
	}
	cancel()
}

// TestJournalStreamResumeGapEmitsTailLoss: resuming below the oldest
// surviving record after an overwrite yields a tail-loss marker first, so
// the consumer knows the gap size instead of silently missing records.
func TestJournalStreamResumeGapEmitsTailLoss(t *testing.T) {
	r := newTestRegistry(t)
	j := journal.New(4)
	r.SetJournal(j)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	for lam := uint64(1); lam <= 8; lam++ {
		j.Add(journal.Record{Run: 1, Site: "b1", Cat: journal.CatBroker, Kind: journal.KindDispatch, Lamport: lam})
	}
	// The client saw up to lamport 2 with no drops; the ring now starts at
	// 5 having dropped 4 records.
	sc, cancel := streamLines(t, srv, "?after=2.2&dropped=0")
	loss := nextRecord(t, sc)
	if loss.Kind != journal.KindTailLoss || loss.Lamport != 5 || loss.Detail != "missing=4" {
		t.Fatalf("first line = %+v, want tail-loss upTo=5 missing=4", loss)
	}
	for lam := uint64(5); lam <= 8; lam++ {
		if rec := nextRecord(t, sc); rec.Lamport != lam {
			t.Fatalf("survivor lamport = %d, want %d", rec.Lamport, lam)
		}
	}
	cancel()

	// A client that already accounted for the drops gets no marker.
	sc2, cancel2 := streamLines(t, srv, "?after=4.4&dropped=4")
	if rec := nextRecord(t, sc2); rec.Kind == journal.KindTailLoss {
		t.Fatalf("unexpected tail-loss for an up-to-date client: %+v", rec)
	}
	cancel2()
}

// TestJournalStreamMetrics: the ring's drop counter and record gauge are
// exported once a journal is attached.
func TestJournalStreamMetrics(t *testing.T) {
	r := newTestRegistry(t)
	j := journal.New(4)
	r.SetJournal(j)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	for lam := uint64(1); lam <= 6; lam++ {
		j.Add(journal.Record{Run: 1, Site: "b1", Cat: journal.CatBroker, Kind: journal.KindDispatch, Lamport: lam})
	}
	_, body := get(t, srv, "/metrics")
	for _, want := range []string{
		"padres_journal_records 4",
		"padres_journal_dropped_total 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}
