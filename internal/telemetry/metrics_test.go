package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"

	"padres/internal/message"
)

func TestCounterGaugeMaxGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}

	var g Gauge
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Dec()
	if g.Value() != 6 {
		t.Fatalf("gauge = %d, want 6", g.Value())
	}

	var m MaxGauge
	m.Observe(3)
	m.Observe(9)
	m.Observe(5)
	if m.Value() != 9 {
		t.Fatalf("max gauge = %d, want 9", m.Value())
	}
}

func TestMaxGaugeConcurrent(t *testing.T) {
	var m MaxGauge
	var wg sync.WaitGroup
	for i := 1; i <= 50; i++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			m.Observe(n)
		}(int64(i))
	}
	wg.Wait()
	if m.Value() != 50 {
		t.Fatalf("max gauge = %d, want 50", m.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // bucket le=0.001
	h.Observe(5 * time.Millisecond)   // bucket le=0.01
	h.Observe(5 * time.Millisecond)
	h.Observe(time.Second) // +Inf bucket

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	want := []int64{1, 2, 0, 1}
	for i, n := range want {
		if s.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], n, s.Counts)
		}
	}
	if got := s.Sum; got != 1010500*time.Microsecond {
		t.Fatalf("sum = %v, want 1.0105s", got)
	}
	if mean := s.Mean(); mean != s.Sum/4 {
		t.Fatalf("mean = %v", mean)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != time.Millisecond {
		t.Fatalf("p50 = %v, want 1ms", q)
	}
	if q := s.Quantile(0.99); q != 100*time.Millisecond {
		t.Fatalf("p99 = %v, want 100ms", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestBrokerMetricsSends(t *testing.T) {
	bm := NewBrokerMetrics()
	bm.CountSend(message.KindPublish)
	bm.CountSend(message.KindPublish)
	bm.CountSend(message.KindSubscribe)
	bm.CountSend(message.Kind(0))   // ignored: invalid
	bm.CountSend(message.Kind(100)) // ignored: out of slot range

	if got := bm.TotalSends(); got != 3 {
		t.Fatalf("total sends = %d, want 3", got)
	}
	byKind := bm.SendsByKind()
	if byKind[message.KindPublish] != 2 || byKind[message.KindSubscribe] != 1 {
		t.Fatalf("sends by kind = %v", byKind)
	}
	if len(byKind) != 2 {
		t.Fatalf("kinds = %d, want 2 (zero-send kinds omitted)", len(byKind))
	}
}

func TestBrokerMetricsPrometheusFormat(t *testing.T) {
	bm := NewBrokerMetrics()
	bm.QueueDepth.Set(3)
	bm.QueueHighWater.Observe(11)
	bm.Processed.Add(42)
	bm.DroppedPublications.Inc()
	bm.SRTSize.Set(5)
	bm.PRTSize.Set(6)
	bm.CountSend(message.KindPublish)
	bm.DispatchLatency.Observe(2 * time.Millisecond)
	bm.DispatchLatency.Observe(20 * time.Millisecond)

	var sb strings.Builder
	bm.writePrometheus(&sb, "b1")
	out := sb.String()

	for _, want := range []string{
		`padres_broker_queue_depth{broker="b1"} 3`,
		`padres_broker_queue_high_water{broker="b1"} 11`,
		`padres_broker_processed_total{broker="b1"} 42`,
		`padres_broker_dropped_publications_total{broker="b1"} 1`,
		`padres_broker_srt_size{broker="b1"} 5`,
		`padres_broker_prt_size{broker="b1"} 6`,
		`padres_broker_sends_total{broker="b1",kind="publish"} 1`,
		`padres_broker_dispatch_latency_seconds_count{broker="b1"} 2`,
		`padres_broker_dispatch_latency_seconds_bucket{broker="b1",le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Buckets must be cumulative: the le=0.025 bucket contains both the 2 ms
	// and the 20 ms observation.
	if !strings.Contains(out, `padres_broker_dispatch_latency_seconds_bucket{broker="b1",le="0.025"} 2`) {
		t.Errorf("cumulative bucket wrong:\n%s", out)
	}
}
