// Package telemetry is the observability layer of the pub/sub system:
// hop-by-hop message tracing, per-phase movement spans, lock-free broker
// runtime metrics, structured per-component logging, and HTTP exposition
// (Prometheus text, health, trace dumps, pprof).
//
// The package sits below every other layer: it imports only
// internal/message and the standard library, so the broker, transport,
// core, and client packages can all report into it without import cycles.
// The hot-path instruments (Counter, Gauge, MaxGauge, Histogram) are built
// on sync/atomic so the broker dispatch path pays no lock to record a
// measurement.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"padres/internal/message"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// MaxGauge tracks the maximum observed value (a high-water mark).
type MaxGauge struct{ v atomic.Int64 }

// Observe raises the mark to n if n exceeds it.
func (m *MaxGauge) Observe(n int64) {
	for {
		cur := m.v.Load()
		if n <= cur {
			return
		}
		if m.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the high-water mark.
func (m *MaxGauge) Value() int64 { return m.v.Load() }

// defaultLatencyBounds are the histogram bucket upper bounds in seconds,
// spanning sub-millisecond matching up to multi-second congestion stalls.
var defaultLatencyBounds = []float64{
	0.000_05, 0.000_1, 0.000_25, 0.000_5,
	0.001, 0.002_5, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram safe for lock-free
// concurrent observation. Bucket counts are cumulative only at snapshot
// time (each atomic cell holds its own bucket's count).
type Histogram struct {
	bounds []float64 // upper bounds in seconds, ascending
	counts []atomic.Int64
	sum    atomic.Int64 // nanoseconds
	count  atomic.Int64
}

// NewLatencyHistogram returns a histogram with the default latency buckets.
func NewLatencyHistogram() *Histogram { return NewHistogram(defaultLatencyBounds) }

// NewHistogram returns a histogram with the given upper bounds (seconds,
// ascending); an implicit +Inf bucket is appended.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds in seconds; implicit +Inf bucket last
	Counts []int64   // len(Bounds)+1 per-bucket (non-cumulative) counts
	Sum    time.Duration
	Count  int64
}

// Snapshot copies the histogram state. Concurrent observations may land
// between cell reads; totals are therefore approximate under load, which is
// acceptable for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    time.Duration(h.sum.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns the mean observed duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) assuming observations sit
// at their bucket's upper bound; the +Inf bucket reports the last finite
// bound.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			bound := s.Bounds[len(s.Bounds)-1]
			if i < len(s.Bounds) {
				bound = s.Bounds[i]
			}
			return time.Duration(bound * float64(time.Second))
		}
	}
	return time.Duration(s.Bounds[len(s.Bounds)-1] * float64(time.Second))
}

// kindSlots bounds the per-kind counter array; message kinds are small
// consecutive integers.
const kindSlots = 16

// BrokerMetrics holds one broker's runtime instruments. All fields are
// updated lock-free; the broker hot path touches only atomics.
type BrokerMetrics struct {
	// QueueDepth mirrors the broker inbox length.
	QueueDepth Gauge
	// QueueHighWater is the maximum inbox length seen since start.
	QueueHighWater MaxGauge
	// BackpressureWaits counts times a sender blocked because the bounded
	// inbox was full (one increment per blocking episode, not per retry).
	BackpressureWaits Counter
	// Processed counts messages fully processed by the dispatch loop.
	Processed Counter
	// DroppedPublications counts publications discarded because no
	// advertisement matched them.
	DroppedPublications Counter
	// SRTSize and PRTSize mirror the routing table sizes (including
	// prepared shadow configurations of in-flight movements).
	SRTSize Gauge
	PRTSize Gauge
	// DispatchLatency measures the real processing time of one message
	// (matching and forwarding), excluding any simulated service delay.
	DispatchLatency *Histogram
	// MatchLatency measures the publication matching pass alone.
	MatchLatency *Histogram
	// LinksDown mirrors the number of this broker's overlay links whose
	// circuit breaker is currently open.
	LinksDown Gauge
	// LinkDownEvents counts breaker-open transitions on this broker's links.
	LinkDownEvents Counter
	// sends counts messages sent, by message kind.
	sends [kindSlots]Counter
}

// NewBrokerMetrics returns zeroed broker instruments.
func NewBrokerMetrics() *BrokerMetrics {
	return &BrokerMetrics{
		DispatchLatency: NewLatencyHistogram(),
		MatchLatency:    NewLatencyHistogram(),
	}
}

// CountSend records one outbound message of the given kind.
func (bm *BrokerMetrics) CountSend(k message.Kind) {
	if k > 0 && int(k) < kindSlots {
		bm.sends[k].Inc()
	}
}

// SendsByKind returns the outbound message counts per kind (kinds with zero
// sends are omitted).
func (bm *BrokerMetrics) SendsByKind() map[message.Kind]int64 {
	out := make(map[message.Kind]int64)
	for k := 1; k < kindSlots; k++ {
		if n := bm.sends[k].Value(); n > 0 {
			out[message.Kind(k)] = n
		}
	}
	return out
}

// TotalSends returns the outbound message count across all kinds.
func (bm *BrokerMetrics) TotalSends() int64 {
	var total int64
	for k := 1; k < kindSlots; k++ {
		total += bm.sends[k].Value()
	}
	return total
}

// writePrometheus emits the broker's instruments in Prometheus text format,
// labelled with the broker ID. Output ordering is deterministic.
func (bm *BrokerMetrics) writePrometheus(w io.Writer, broker string) {
	l := fmt.Sprintf("{broker=%q}", broker)
	fmt.Fprintf(w, "padres_broker_queue_depth%s %d\n", l, bm.QueueDepth.Value())
	fmt.Fprintf(w, "padres_broker_queue_high_water%s %d\n", l, bm.QueueHighWater.Value())
	fmt.Fprintf(w, "padres_broker_backpressure_waits_total%s %d\n", l, bm.BackpressureWaits.Value())
	fmt.Fprintf(w, "padres_broker_processed_total%s %d\n", l, bm.Processed.Value())
	fmt.Fprintf(w, "padres_broker_dropped_publications_total%s %d\n", l, bm.DroppedPublications.Value())
	fmt.Fprintf(w, "padres_broker_srt_size%s %d\n", l, bm.SRTSize.Value())
	fmt.Fprintf(w, "padres_broker_prt_size%s %d\n", l, bm.PRTSize.Value())
	fmt.Fprintf(w, "padres_broker_links_down%s %d\n", l, bm.LinksDown.Value())
	fmt.Fprintf(w, "padres_broker_link_down_total%s %d\n", l, bm.LinkDownEvents.Value())
	for k := 1; k < kindSlots; k++ {
		if n := bm.sends[k].Value(); n > 0 {
			fmt.Fprintf(w, "padres_broker_sends_total{broker=%q,kind=%q} %d\n",
				broker, message.Kind(k).String(), n)
		}
	}
	writeHistogram(w, "padres_broker_dispatch_latency_seconds", broker, bm.DispatchLatency.Snapshot())
	writeHistogram(w, "padres_broker_match_latency_seconds", broker, bm.MatchLatency.Snapshot())
}

// StoreMetrics holds one broker's durable-store instruments: WAL append
// volume, group-commit fsync cost, checkpoint recency, and recovery cost.
// Updated only by the store's flusher goroutine and its Open path, but the
// instruments stay atomic so scrapes need no coordination.
type StoreMetrics struct {
	// WALAppends counts records appended to the write-ahead log.
	WALAppends Counter
	// WALBytes counts framed bytes written to the log.
	WALBytes Counter
	// Fsyncs counts group commits (one fsync each, batching many appends).
	Fsyncs Counter
	// FsyncLatency measures the fsync portion of each group commit.
	FsyncLatency *Histogram
	// Snapshots counts completed checkpoint cycles (snapshot + truncation).
	Snapshots Counter
	// LastSnapshotUnixNano is the wall time of the last checkpoint; the
	// exposition derives snapshot age from it. Zero until the first one.
	LastSnapshotUnixNano Gauge
	// SnapshotGen mirrors the current log generation.
	SnapshotGen Gauge
	// RecoveryDuration is the nanoseconds Open spent rebuilding state.
	RecoveryDuration Gauge
	// RecoveredRecords counts WAL records replayed at recovery.
	RecoveredRecords Counter
	// TailTruncations counts torn/corrupt log tails cut off at recovery.
	TailTruncations Counter
}

// NewStoreMetrics returns zeroed store instruments.
func NewStoreMetrics() *StoreMetrics {
	return &StoreMetrics{FsyncLatency: NewLatencyHistogram()}
}

// writePrometheus emits the store's instruments labelled with the broker ID.
func (sm *StoreMetrics) writePrometheus(w io.Writer, broker string) {
	l := fmt.Sprintf("{broker=%q}", broker)
	fmt.Fprintf(w, "padres_store_wal_appends_total%s %d\n", l, sm.WALAppends.Value())
	fmt.Fprintf(w, "padres_store_wal_bytes_total%s %d\n", l, sm.WALBytes.Value())
	fmt.Fprintf(w, "padres_store_fsyncs_total%s %d\n", l, sm.Fsyncs.Value())
	fmt.Fprintf(w, "padres_store_snapshots_total%s %d\n", l, sm.Snapshots.Value())
	fmt.Fprintf(w, "padres_store_snapshot_gen%s %d\n", l, sm.SnapshotGen.Value())
	age := 0.0
	if ts := sm.LastSnapshotUnixNano.Value(); ts > 0 {
		age = time.Since(time.Unix(0, ts)).Seconds()
	}
	fmt.Fprintf(w, "padres_store_snapshot_age_seconds%s %g\n", l, age)
	fmt.Fprintf(w, "padres_store_recovery_duration_seconds%s %g\n", l,
		time.Duration(sm.RecoveryDuration.Value()).Seconds())
	fmt.Fprintf(w, "padres_store_recovered_records_total%s %d\n", l, sm.RecoveredRecords.Value())
	fmt.Fprintf(w, "padres_store_tail_truncations_total%s %d\n", l, sm.TailTruncations.Value())
	writeHistogram(w, "padres_store_fsync_latency_seconds", broker, sm.FsyncLatency.Snapshot())
}

// writeHistogram emits one histogram in Prometheus text format (cumulative
// buckets, as the exposition format requires).
func writeHistogram(w io.Writer, name, broker string, s HistogramSnapshot) {
	var cum int64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket{broker=%q,le=%q} %d\n", name, broker, formatBound(bound), cum)
	}
	cum += s.Counts[len(s.Counts)-1]
	fmt.Fprintf(w, "%s_bucket{broker=%q,le=\"+Inf\"} %d\n", name, broker, cum)
	fmt.Fprintf(w, "%s_sum{broker=%q} %g\n", name, broker, s.Sum.Seconds())
	fmt.Fprintf(w, "%s_count{broker=%q} %d\n", name, broker, s.Count)
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }
