// Package telemetry is the observability layer of the pub/sub system:
// hop-by-hop message tracing, per-phase movement spans, lock-free broker
// runtime metrics, structured per-component logging, and HTTP exposition
// (Prometheus text, health, trace dumps, pprof).
//
// The package sits below every other layer: it imports only
// internal/message and the standard library, so the broker, transport,
// core, and client packages can all report into it without import cycles.
// The hot-path instruments (Counter, Gauge, MaxGauge, Histogram) are built
// on sync/atomic so the broker dispatch path pays no lock to record a
// measurement.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"padres/internal/message"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// MaxGauge tracks the maximum observed value (a high-water mark).
type MaxGauge struct{ v atomic.Int64 }

// Observe raises the mark to n if n exceeds it.
func (m *MaxGauge) Observe(n int64) {
	for {
		cur := m.v.Load()
		if n <= cur {
			return
		}
		if m.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the high-water mark.
func (m *MaxGauge) Value() int64 { return m.v.Load() }

// defaultLatencyBounds are the histogram bucket upper bounds in seconds,
// spanning sub-millisecond matching up to multi-second congestion stalls.
var defaultLatencyBounds = []float64{
	0.000_05, 0.000_1, 0.000_25, 0.000_5,
	0.001, 0.002_5, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram safe for lock-free
// concurrent observation. Bucket counts are cumulative only at snapshot
// time (each atomic cell holds its own bucket's count).
type Histogram struct {
	bounds []float64 // upper bounds in seconds, ascending
	counts []atomic.Int64
	sum    atomic.Int64 // nanoseconds
	count  atomic.Int64
}

// NewLatencyHistogram returns a histogram with the default latency buckets.
func NewLatencyHistogram() *Histogram { return NewHistogram(defaultLatencyBounds) }

// NewHistogram returns a histogram with the given upper bounds (seconds,
// ascending); an implicit +Inf bucket is appended.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds in seconds; implicit +Inf bucket last
	Counts []int64   // len(Bounds)+1 per-bucket (non-cumulative) counts
	Sum    time.Duration
	Count  int64
}

// Snapshot copies the histogram state. Concurrent observations may land
// between cell reads; totals are therefore approximate under load, which is
// acceptable for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    time.Duration(h.sum.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns the mean observed duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) assuming observations sit
// at their bucket's upper bound; the +Inf bucket reports the last finite
// bound.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			bound := s.Bounds[len(s.Bounds)-1]
			if i < len(s.Bounds) {
				bound = s.Bounds[i]
			}
			return time.Duration(bound * float64(time.Second))
		}
	}
	return time.Duration(s.Bounds[len(s.Bounds)-1] * float64(time.Second))
}

// Merge adds other's observations into s. Both snapshots must share the
// same bucket bounds; an empty snapshot (no bounds, no observations) acts
// as the identity on either side.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) error {
	if other.Count == 0 && len(other.Bounds) == 0 {
		return nil
	}
	if s.Count == 0 && len(s.Bounds) == 0 {
		s.Bounds = append([]float64(nil), other.Bounds...)
		s.Counts = append([]int64(nil), other.Counts...)
		s.Sum = other.Sum
		s.Count = other.Count
		return nil
	}
	if len(s.Bounds) != len(other.Bounds) {
		return fmt.Errorf("histogram merge: %d vs %d buckets", len(s.Bounds), len(other.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != other.Bounds[i] {
			return fmt.Errorf("histogram merge: bound %d differs (%g vs %g)", i, s.Bounds[i], other.Bounds[i])
		}
	}
	for i := range other.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Sum += other.Sum
	s.Count += other.Count
	return nil
}

// MergeSnapshots folds any number of snapshots into one. Snapshots must
// share bucket bounds (empties are skipped); the cluster aggregator uses
// it to turn N brokers' same-stage histograms into fleet percentiles.
func MergeSnapshots(snaps ...HistogramSnapshot) (HistogramSnapshot, error) {
	var out HistogramSnapshot
	for _, s := range snaps {
		if err := out.Merge(s); err != nil {
			return HistogramSnapshot{}, err
		}
	}
	return out, nil
}

// kindSlots bounds the per-kind counter array; message kinds are small
// consecutive integers. Keep headroom above the highest defined kind
// (currently KindStandbyResolve = 17) so new kinds are counted, not
// silently dropped by the bounds check in CountSend.
const kindSlots = 24

// BrokerMetrics holds one broker's runtime instruments. All fields are
// updated lock-free; the broker hot path touches only atomics.
type BrokerMetrics struct {
	// QueueDepth mirrors the broker inbox length.
	QueueDepth Gauge
	// QueueHighWater is the maximum inbox length seen since start.
	QueueHighWater MaxGauge
	// BackpressureWaits counts times a sender blocked because the bounded
	// inbox was full (one increment per blocking episode, not per retry).
	BackpressureWaits Counter
	// Processed counts messages fully processed by the dispatch loop.
	Processed Counter
	// DroppedPublications counts publications discarded because no
	// advertisement matched them.
	DroppedPublications Counter
	// SRTSize and PRTSize mirror the routing table sizes (including
	// prepared shadow configurations of in-flight movements).
	SRTSize Gauge
	PRTSize Gauge
	// DispatchLatency measures the real processing time of one message
	// (matching and forwarding), excluding any simulated service delay.
	DispatchLatency *Histogram
	// MatchLatency measures the publication matching pass alone.
	MatchLatency *Histogram
	// LinksDown mirrors the number of this broker's overlay links whose
	// circuit breaker is currently open.
	LinksDown Gauge
	// LinkDownEvents counts breaker-open transitions on this broker's links.
	LinkDownEvents Counter
	// Stages is the named per-stage latency registry the dispatch path
	// reports into: inbox_wait and match always, commit_wait and
	// egress_flush once the parallel pipeline registers them.
	Stages *StageSet
	// InboxWait measures the time a message sat in the inbox before the
	// dispatcher popped it (registered in Stages as inbox_wait).
	InboxWait *Histogram
	// sends counts messages sent, by message kind.
	sends [kindSlots]Counter
	// stageTiming gates the clock reads behind the stage instruments; the
	// telemetry-overhead benchmark flips it off to measure the bare path.
	stageTiming atomic.Bool
	// egressSampler, when set, reports the current per-destination egress
	// queue depths; sampled at exposition time only.
	egressSampler atomic.Pointer[EgressSampler]
}

// EgressSampler reports per-destination egress queue depths keyed by
// destination node ID.
type EgressSampler func() map[string]int

// NewBrokerMetrics returns zeroed broker instruments with stage timing
// enabled.
func NewBrokerMetrics() *BrokerMetrics {
	bm := &BrokerMetrics{
		DispatchLatency: NewLatencyHistogram(),
		MatchLatency:    NewLatencyHistogram(),
		Stages:          NewStageSet(),
	}
	bm.InboxWait = bm.Stages.Register(StageInboxWait)
	bm.Stages.Attach(StageMatch, bm.MatchLatency)
	bm.stageTiming.Store(true)
	return bm
}

// SetStageTiming enables or disables the per-stage clock reads. The
// instruments stay registered; they simply stop observing, which is what
// the overhead benchmark's "off" mode measures.
func (bm *BrokerMetrics) SetStageTiming(on bool) { bm.stageTiming.Store(on) }

// StageTimingEnabled reports whether stage timers should read the clock.
func (bm *BrokerMetrics) StageTimingEnabled() bool { return bm.stageTiming.Load() }

// SetEgressSampler installs the per-destination egress depth callback,
// invoked only at exposition time. A nil sampler detaches it.
func (bm *BrokerMetrics) SetEgressSampler(fn EgressSampler) {
	if fn == nil {
		bm.egressSampler.Store(nil)
		return
	}
	bm.egressSampler.Store(&fn)
}

// EgressDepths returns the sampled per-destination egress queue depths, or
// nil when no sampler is installed.
func (bm *BrokerMetrics) EgressDepths() map[string]int {
	if fn := bm.egressSampler.Load(); fn != nil {
		return (*fn)()
	}
	return nil
}

// CountSend records one outbound message of the given kind.
func (bm *BrokerMetrics) CountSend(k message.Kind) {
	if k > 0 && int(k) < kindSlots {
		bm.sends[k].Inc()
	}
}

// SendsByKind returns the outbound message counts per kind (kinds with zero
// sends are omitted).
func (bm *BrokerMetrics) SendsByKind() map[message.Kind]int64 {
	out := make(map[message.Kind]int64)
	for k := 1; k < kindSlots; k++ {
		if n := bm.sends[k].Value(); n > 0 {
			out[message.Kind(k)] = n
		}
	}
	return out
}

// TotalSends returns the outbound message count across all kinds.
func (bm *BrokerMetrics) TotalSends() int64 {
	var total int64
	for k := 1; k < kindSlots; k++ {
		total += bm.sends[k].Value()
	}
	return total
}

// writeProm adds the broker's instruments to the exposition builder,
// labelled with the broker ID. Output ordering is deterministic.
func (bm *BrokerMetrics) writeProm(pb *PromBuilder, broker string) {
	l := []Label{{"broker", broker}}
	pb.Gauge("padres_broker_queue_depth", "Current broker inbox length.", l, bm.QueueDepth.Value())
	pb.Gauge("padres_broker_queue_high_water", "Maximum inbox length seen since start.", l, bm.QueueHighWater.Value())
	pb.Counter("padres_broker_backpressure_waits_total", "Blocking episodes on the bounded inbox.", l, bm.BackpressureWaits.Value())
	pb.Counter("padres_broker_processed_total", "Messages fully processed by the dispatch loop.", l, bm.Processed.Value())
	pb.Counter("padres_broker_dropped_publications_total", "Publications discarded because no advertisement matched.", l, bm.DroppedPublications.Value())
	pb.Gauge("padres_broker_srt_size", "Subscription routing table size.", l, bm.SRTSize.Value())
	pb.Gauge("padres_broker_prt_size", "Publication routing table size.", l, bm.PRTSize.Value())
	pb.Gauge("padres_broker_links_down", "Overlay links of this broker with an open circuit breaker.", l, bm.LinksDown.Value())
	pb.Counter("padres_broker_link_down_total", "Breaker-open transitions on this broker's links.", l, bm.LinkDownEvents.Value())
	for k := 1; k < kindSlots; k++ {
		if n := bm.sends[k].Value(); n > 0 {
			pb.Counter("padres_broker_sends_total", "Messages sent, by message kind.",
				[]Label{{"broker", broker}, {"kind", message.Kind(k).String()}}, n)
		}
	}
	if depths := bm.EgressDepths(); depths != nil {
		dests := make([]string, 0, len(depths))
		for d := range depths {
			dests = append(dests, d)
		}
		sort.Strings(dests)
		for _, d := range dests {
			pb.Gauge("padres_broker_egress_depth", "Per-destination egress queue depth of the dispatch pipeline.",
				[]Label{{"broker", broker}, {"dest", d}}, int64(depths[d]))
		}
	}
	pb.Histogram("padres_broker_dispatch_latency_seconds", "Real processing time of one message (matching and forwarding).", l, bm.DispatchLatency.Snapshot())
	pb.Histogram("padres_broker_match_latency_seconds", "Publication matching pass alone.", l, bm.MatchLatency.Snapshot())
	stages := bm.Stages.Snapshot()
	for _, name := range bm.Stages.Names() {
		pb.Histogram("padres_broker_stage_seconds", "Per-stage dispatch latency, keyed by pipeline stage.",
			[]Label{{"broker", broker}, {"stage", name}}, stages[name])
	}
}

// writePrometheus emits the broker's instruments in Prometheus text format
// (one self-contained exposition fragment, HELP/TYPE included).
func (bm *BrokerMetrics) writePrometheus(w io.Writer, broker string) {
	pb := NewPromBuilder()
	bm.writeProm(pb, broker)
	pb.Emit(w)
}

// StoreMetrics holds one broker's durable-store instruments: WAL append
// volume, group-commit fsync cost, checkpoint recency, and recovery cost.
// Updated only by the store's flusher goroutine and its Open path, but the
// instruments stay atomic so scrapes need no coordination.
type StoreMetrics struct {
	// WALAppends counts records appended to the write-ahead log.
	WALAppends Counter
	// WALBytes counts framed bytes written to the log.
	WALBytes Counter
	// Fsyncs counts group commits (one fsync each, batching many appends).
	Fsyncs Counter
	// FsyncLatency measures the fsync portion of each group commit.
	FsyncLatency *Histogram
	// CommitLatency measures one record's full durability path: from its
	// enqueue on the flusher to the group commit's successful fsync.
	CommitLatency *Histogram
	// Snapshots counts completed checkpoint cycles (snapshot + truncation).
	Snapshots Counter
	// LastSnapshotUnixNano is the wall time of the last checkpoint; the
	// exposition derives snapshot age from it. Zero until the first one.
	LastSnapshotUnixNano Gauge
	// SnapshotGen mirrors the current log generation.
	SnapshotGen Gauge
	// RecoveryDuration is the nanoseconds Open spent rebuilding state.
	RecoveryDuration Gauge
	// RecoveredRecords counts WAL records replayed at recovery.
	RecoveredRecords Counter
	// TailTruncations counts torn/corrupt log tails cut off at recovery.
	TailTruncations Counter
}

// NewStoreMetrics returns zeroed store instruments.
func NewStoreMetrics() *StoreMetrics {
	return &StoreMetrics{
		FsyncLatency:  NewLatencyHistogram(),
		CommitLatency: NewLatencyHistogram(),
	}
}

// writeProm adds the store's instruments labelled with the broker ID.
func (sm *StoreMetrics) writeProm(pb *PromBuilder, broker string) {
	l := []Label{{"broker", broker}}
	pb.Counter("padres_store_wal_appends_total", "Records appended to the write-ahead log.", l, sm.WALAppends.Value())
	pb.Counter("padres_store_wal_bytes_total", "Framed bytes written to the log.", l, sm.WALBytes.Value())
	pb.Counter("padres_store_fsyncs_total", "Group commits (one fsync each).", l, sm.Fsyncs.Value())
	pb.Counter("padres_store_snapshots_total", "Completed checkpoint cycles.", l, sm.Snapshots.Value())
	pb.Gauge("padres_store_snapshot_gen", "Current log generation.", l, sm.SnapshotGen.Value())
	age := 0.0
	if ts := sm.LastSnapshotUnixNano.Value(); ts > 0 {
		age = time.Since(time.Unix(0, ts)).Seconds()
	}
	pb.GaugeFloat("padres_store_snapshot_age_seconds", "Seconds since the last checkpoint.", l, age)
	pb.GaugeFloat("padres_store_recovery_duration_seconds", "Wall time Open spent rebuilding state.", l,
		time.Duration(sm.RecoveryDuration.Value()).Seconds())
	pb.Counter("padres_store_recovered_records_total", "WAL records replayed at recovery.", l, sm.RecoveredRecords.Value())
	pb.Counter("padres_store_tail_truncations_total", "Torn or corrupt log tails cut off at recovery.", l, sm.TailTruncations.Value())
	pb.Histogram("padres_store_fsync_latency_seconds", "Fsync portion of each group commit.", l, sm.FsyncLatency.Snapshot())
	pb.Histogram("padres_store_commit_latency_seconds", "Record durability latency from flusher enqueue to fsync.", l, sm.CommitLatency.Snapshot())
}

// writePrometheus emits the store's instruments in Prometheus text format.
func (sm *StoreMetrics) writePrometheus(w io.Writer, broker string) {
	pb := NewPromBuilder()
	sm.writeProm(pb, broker)
	pb.Emit(w)
}

// ReplicationMetrics holds one broker's movement-decision replication
// instruments: quorum write latency, hinted-handoff depth, standby
// takeovers, and generation fencing. Updated lock-free by the replication
// agent; scrapes need no coordination.
type ReplicationMetrics struct {
	// QuorumLatency measures one decision's replication round: from the
	// first ReplicateDecision send to the write quorum's last required ack.
	QuorumLatency *Histogram
	// Replicated counts decision records successfully replicated to a
	// write quorum before the coordinator acted on them.
	Replicated Counter
	// QuorumFailures counts decisions whose write quorum never assembled
	// within the replication timeout (the move aborts instead).
	QuorumFailures Counter
	// HandoffDepth mirrors the number of hinted-handoff records currently
	// parked at this broker for unreachable preference-list members.
	HandoffDepth Gauge
	// Handoffs counts hinted handoffs accepted on behalf of down replicas.
	Handoffs Counter
	// HandoffDeliveries counts parked hints re-delivered to their owner.
	HandoffDeliveries Counter
	// Takeovers counts standby takeovers this broker completed (lease
	// claimed, quorum granted, resolution driven to every participant).
	Takeovers Counter
	// LeaseClaims counts takeover bids this broker issued.
	LeaseClaims Counter
	// FencingRejections counts stale coordinator messages dropped because
	// a higher-generation takeover had fenced them.
	FencingRejections Counter
	// DecisionsHeld mirrors the replica decision records currently held on
	// behalf of other coordinators.
	DecisionsHeld Gauge
}

// NewReplicationMetrics returns zeroed replication instruments.
func NewReplicationMetrics() *ReplicationMetrics {
	return &ReplicationMetrics{QuorumLatency: NewLatencyHistogram()}
}

// writeProm adds the replication instruments labelled with the broker ID.
func (rm *ReplicationMetrics) writeProm(pb *PromBuilder, broker string) {
	l := []Label{{"broker", broker}}
	pb.Counter("padres_replication_replicated_total", "Decision records replicated to a write quorum.", l, rm.Replicated.Value())
	pb.Counter("padres_replication_quorum_failures_total", "Decisions whose write quorum never assembled in time.", l, rm.QuorumFailures.Value())
	pb.Gauge("padres_replication_handoff_depth", "Hinted-handoff records parked for unreachable replicas.", l, rm.HandoffDepth.Value())
	pb.Counter("padres_replication_handoffs_total", "Hinted handoffs accepted on behalf of down replicas.", l, rm.Handoffs.Value())
	pb.Counter("padres_replication_handoff_deliveries_total", "Parked hints re-delivered to their owning replica.", l, rm.HandoffDeliveries.Value())
	pb.Counter("padres_replication_takeovers_total", "Standby takeovers completed by this broker.", l, rm.Takeovers.Value())
	pb.Counter("padres_replication_lease_claims_total", "Takeover bids issued by this broker.", l, rm.LeaseClaims.Value())
	pb.Counter("padres_replication_fencing_rejections_total", "Stale lower-generation coordinator messages dropped.", l, rm.FencingRejections.Value())
	pb.Gauge("padres_replication_decisions_held", "Replica decision records held for other coordinators.", l, rm.DecisionsHeld.Value())
	pb.Histogram("padres_replication_quorum_latency_seconds", "Decision replication round: first send to write-quorum ack.", l, rm.QuorumLatency.Snapshot())
}

// writePrometheus emits the replication instruments in Prometheus text form.
func (rm *ReplicationMetrics) writePrometheus(w io.Writer, broker string) {
	pb := NewPromBuilder()
	rm.writeProm(pb, broker)
	pb.Emit(w)
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }
