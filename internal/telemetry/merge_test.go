package telemetry

import (
	"math/rand"
	"testing"
	"time"
)

// randomSnapshot builds a snapshot from n random observations on the
// default latency buckets.
func randomSnapshot(rng *rand.Rand, n int) HistogramSnapshot {
	h := NewLatencyHistogram()
	for i := 0; i < n; i++ {
		// Log-uniform across the full bucket span, including overflow.
		exp := rng.Float64()*7 - 5 // 10µs .. 100s in seconds
		d := time.Duration(math10(exp) * float64(time.Second))
		if d <= 0 {
			d = time.Microsecond
		}
		h.Observe(d)
	}
	return h.Snapshot()
}

func math10(exp float64) float64 {
	v := 1.0
	for exp >= 1 {
		v *= 10
		exp--
	}
	for exp <= -1 {
		v /= 10
		exp++
	}
	// Fractional remainder approximated linearly; precision is irrelevant,
	// the property tests only need well-spread positive durations.
	return v * (1 + exp*9)
}

func totalCount(s HistogramSnapshot) int64 {
	var t int64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// TestMergePreservesCountsAndSum: merging K random snapshots yields exactly
// the sums of their counts, per-bucket counts, and sums.
func TestMergePreservesCountsAndSum(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(5)
		snaps := make([]HistogramSnapshot, k)
		var wantCount int64
		var wantSum time.Duration
		for i := range snaps {
			snaps[i] = randomSnapshot(rng, rng.Intn(200))
			wantCount += snaps[i].Count
			wantSum += snaps[i].Sum
		}
		got, err := MergeSnapshots(snaps...)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != wantCount {
			t.Fatalf("trial %d: count = %d, want %d", trial, got.Count, wantCount)
		}
		if got.Sum != wantSum {
			t.Fatalf("trial %d: sum = %v, want %v", trial, got.Sum, wantSum)
		}
		if got.Count != totalCount(got) {
			t.Fatalf("trial %d: buckets sum to %d, count %d", trial, totalCount(got), got.Count)
		}
		for i := range got.Counts {
			var want int64
			for _, s := range snaps {
				want += s.Counts[i]
			}
			if got.Counts[i] != want {
				t.Fatalf("trial %d: bucket %d = %d, want %d", trial, i, got.Counts[i], want)
			}
		}
	}
}

// TestMergeEmptyIdentity: the empty snapshot is the identity on either
// side, and merging only empties yields an empty snapshot.
func TestMergeEmptyIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomSnapshot(rng, 100)

	left := HistogramSnapshot{}
	if err := left.Merge(s); err != nil {
		t.Fatal(err)
	}
	if left.Count != s.Count || totalCount(left) != totalCount(s) {
		t.Fatalf("empty.Merge(s) = %+v", left)
	}

	right := s
	right.Counts = append([]int64(nil), s.Counts...)
	if err := right.Merge(HistogramSnapshot{}); err != nil {
		t.Fatal(err)
	}
	if right.Count != s.Count {
		t.Fatalf("s.Merge(empty) changed count: %d", right.Count)
	}

	both, err := MergeSnapshots(HistogramSnapshot{}, HistogramSnapshot{})
	if err != nil {
		t.Fatal(err)
	}
	if both.Count != 0 || len(both.Bounds) != 0 {
		t.Fatalf("empty merge = %+v", both)
	}
}

// TestMergeDoesNotAliasSource: merging into an empty snapshot must copy the
// source's buckets, not alias them.
func TestMergeDoesNotAliasSource(t *testing.T) {
	src := HistogramSnapshot{Bounds: []float64{1}, Counts: []int64{2, 3}, Count: 5}
	var dst HistogramSnapshot
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	dst.Counts[0] = 99
	if src.Counts[0] != 2 {
		t.Fatal("merge aliased the source's counts")
	}
}

func TestMergeBoundMismatch(t *testing.T) {
	a := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []int64{0, 0, 0}, Count: 0}
	b := HistogramSnapshot{Bounds: []float64{1}, Counts: []int64{0, 0}, Count: 0}
	c := HistogramSnapshot{Bounds: []float64{1, 3}, Counts: []int64{0, 0, 0}, Count: 0}
	if err := a.Merge(b); err == nil {
		t.Error("bucket-count mismatch accepted")
	}
	if err := a.Merge(c); err == nil {
		t.Error("bound-value mismatch accepted")
	}
}

// TestQuantileMonotone: for any snapshot, Quantile is monotone
// non-decreasing in q, and bracketed by the first and last buckets.
func TestQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		s := randomSnapshot(rng, 1+rng.Intn(500))
		prev := time.Duration(-1)
		for q := 0.01; q <= 1.0; q += 0.01 {
			cur := s.Quantile(q)
			if cur < prev {
				t.Fatalf("trial %d: Quantile(%.2f) = %v < previous %v", trial, q, cur, prev)
			}
			prev = cur
		}
		if max := s.Quantile(1.0); max > time.Duration(s.Bounds[len(s.Bounds)-1]*float64(time.Second)) {
			t.Fatalf("trial %d: q1.0 = %v beyond last bound", trial, max)
		}
	}
}

// TestQuantileMergeConsistent: the quantiles of a merged snapshot lie
// within the min..max of the inputs' same-q quantiles (bucketed quantiles
// cannot leave the inputs' envelope).
func TestQuantileMergeConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		a := randomSnapshot(rng, 1+rng.Intn(300))
		b := randomSnapshot(rng, 1+rng.Intn(300))
		m, err := MergeSnapshots(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
			lo, hi := a.Quantile(q), b.Quantile(q)
			if lo > hi {
				lo, hi = hi, lo
			}
			if got := m.Quantile(q); got < lo || got > hi {
				t.Fatalf("trial %d: merged q%.2f = %v outside [%v, %v]", trial, q, got, lo, hi)
			}
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	// A single observation: every quantile is its bucket's upper bound.
	h := NewHistogram([]float64{0.01, 0.1})
	h.Observe(50 * time.Millisecond)
	s := h.Snapshot()
	for _, q := range []float64{0.01, 0.5, 1.0} {
		if got := s.Quantile(q); got != 100*time.Millisecond {
			t.Errorf("q%.2f = %v, want 100ms", q, got)
		}
	}
	// Overflow-only observation reports the last finite bound.
	h2 := NewHistogram([]float64{0.01})
	h2.Observe(time.Second)
	if got := h2.Snapshot().Quantile(0.5); got != 10*time.Millisecond {
		t.Errorf("overflow quantile = %v, want 10ms", got)
	}
}
