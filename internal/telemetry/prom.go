package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// PromBuilder assembles a Prometheus text-format (0.0.4) exposition with
// the conformance guarantees the ad-hoc writers could not give: every
// metric family is announced by exactly one # HELP / # TYPE pair, all
// series of a family are contiguous, and label values are escaped. Sample
// lines keep the established formatting (integer values as %d, floats as
// %g, `le` last on histogram buckets) so existing scrapers and tests see
// byte-identical series.
//
// Families appear in first-registration order; samples within a family in
// insertion order. The builder is not safe for concurrent use — callers
// build under their own exclusion (the Registry holds its lock).
type PromBuilder struct {
	order []string
	fams  map[string]*promFamily
}

type promFamily struct {
	name, help, typ string
	lines           []string
}

// NewPromBuilder returns an empty exposition builder.
func NewPromBuilder() *PromBuilder {
	return &PromBuilder{fams: make(map[string]*promFamily)}
}

// Label is one name="value" pair on a sample. Values are escaped at
// formatting time; callers pass them raw.
type Label struct {
	Name  string
	Value string
}

// family returns the named family, creating it with the given metadata on
// first use. Later registrations keep the first help/type.
func (pb *PromBuilder) family(name, help, typ string) *promFamily {
	f, ok := pb.fams[name]
	if !ok {
		f = &promFamily{name: name, help: help, typ: typ}
		pb.fams[name] = f
		pb.order = append(pb.order, name)
	}
	return f
}

// Counter adds one counter sample.
func (pb *PromBuilder) Counter(name, help string, labels []Label, v int64) {
	f := pb.family(name, help, "counter")
	f.lines = append(f.lines, fmt.Sprintf("%s%s %d", name, formatLabels(labels), v))
}

// Gauge adds one integer gauge sample.
func (pb *PromBuilder) Gauge(name, help string, labels []Label, v int64) {
	f := pb.family(name, help, "gauge")
	f.lines = append(f.lines, fmt.Sprintf("%s%s %d", name, formatLabels(labels), v))
}

// GaugeFloat adds one floating-point gauge sample.
func (pb *PromBuilder) GaugeFloat(name, help string, labels []Label, v float64) {
	f := pb.family(name, help, "gauge")
	f.lines = append(f.lines, fmt.Sprintf("%s%s %g", name, formatLabels(labels), v))
}

// Histogram adds one histogram series (cumulative _bucket samples with the
// `le` label last, then _sum and _count) under a single family typed
// histogram, as the exposition format requires.
func (pb *PromBuilder) Histogram(name, help string, labels []Label, s HistogramSnapshot) {
	f := pb.family(name, help, "histogram")
	withLE := func(le string) []Label {
		ls := make([]Label, 0, len(labels)+1)
		ls = append(ls, labels...)
		return append(ls, Label{"le", le})
	}
	var cum int64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		f.lines = append(f.lines, fmt.Sprintf("%s_bucket%s %d",
			name, formatLabels(withLE(formatBound(bound))), cum))
	}
	if len(s.Counts) > 0 {
		cum += s.Counts[len(s.Counts)-1]
	}
	f.lines = append(f.lines, fmt.Sprintf("%s_bucket%s %d", name, formatLabels(withLE("+Inf")), cum))
	f.lines = append(f.lines, fmt.Sprintf("%s_sum%s %g", name, formatLabels(labels), s.Sum.Seconds()))
	f.lines = append(f.lines, fmt.Sprintf("%s_count%s %d", name, formatLabels(labels), s.Count))
}

// Emit writes the exposition: per family one HELP/TYPE pair followed by
// its samples, families in registration order. Empty families are skipped.
func (pb *PromBuilder) Emit(w io.Writer) {
	for _, name := range pb.order {
		f := pb.fams[name]
		if len(f.lines) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, line := range f.lines {
			io.WriteString(w, line)
			io.WriteString(w, "\n")
		}
	}
}

// formatLabels renders a label set as {a="b",c="d"}, empty string for no
// labels. Values are escaped per the exposition format.
func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(EscapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// EscapeLabelValue escapes a label value per the Prometheus text format:
// backslash, double quote, and newline.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP text: backslash and newline (quotes are legal).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
