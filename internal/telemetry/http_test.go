package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"padres/internal/journal"
	"padres/internal/message"
)

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	bm := NewBrokerMetrics()
	bm.Processed.Add(7)
	r.RegisterBroker("b1", bm)
	r.Traces().RecordHop("pub:p1", "b1", "b2", message.KindPublish, time.Unix(3000, 0))
	r.Spans().Observe("x1", "c1", "b1", StepMoveRequested, time.Unix(3000, 0), "")
	r.Spans().Observe("x1", "c1", "b1", StepCommitted, time.Unix(3001, 0), "")
	return r
}

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestHandlerMetrics(t *testing.T) {
	srv := httptest.NewServer(newTestRegistry(t).Handler())
	defer srv.Close()

	resp, body := get(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"padres_uptime_seconds",
		"padres_traces_stored 1",
		"padres_movement_timelines_completed 1",
		`padres_broker_processed_total{broker="b1"} 7`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerExtraExposition(t *testing.T) {
	r := newTestRegistry(t)
	r.AddExposition(func(w io.Writer) {
		fmt.Fprintln(w, "padres_custom_metric 42")
	})
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	_, body := get(t, srv, "/metrics")
	if !strings.Contains(body, "padres_custom_metric 42") {
		t.Fatalf("extra exposition missing:\n%s", body)
	}
}

func TestHandlerHealthz(t *testing.T) {
	srv := httptest.NewServer(newTestRegistry(t).Handler())
	defer srv.Close()

	resp, body := get(t, srv, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var h struct {
		Status  string   `json:"status"`
		Uptime  float64  `json:"uptime_seconds"`
		Brokers []string `json:"brokers"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz json: %v\n%s", err, body)
	}
	if h.Status != "ok" || len(h.Brokers) != 1 || h.Brokers[0] != "b1" {
		t.Fatalf("healthz = %+v", h)
	}
}

func TestHandlerTraces(t *testing.T) {
	srv := httptest.NewServer(newTestRegistry(t).Handler())
	defer srv.Close()

	_, body := get(t, srv, "/traces")
	var p struct {
		Total  int           `json:"total"`
		Count  int           `json:"count"`
		Traces []TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("traces json: %v\n%s", err, body)
	}
	if p.Total != 1 || p.Count != 1 || len(p.Traces) != 1 || p.Traces[0].ID != "pub:p1" {
		t.Fatalf("traces = %+v", p)
	}

	_, body = get(t, srv, "/traces?id=pub:p1")
	var one TraceRecord
	if err := json.Unmarshal([]byte(body), &one); err != nil {
		t.Fatalf("trace json: %v\n%s", err, body)
	}
	if len(one.Hops) != 1 || one.Hops[0].Kind != "publish" {
		t.Fatalf("trace = %+v", one)
	}

	resp, _ := get(t, srv, "/traces?id=pub:nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace status = %d, want 404", resp.StatusCode)
	}
}

func TestHandlerTracesPagination(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 5; i++ {
		id := message.TraceID(fmt.Sprintf("pub:p%d", i))
		r.Traces().RecordHop(id, "b1", "b2", message.KindPublish, time.Unix(int64(3000+i), 0))
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	var p struct {
		Total     int           `json:"total"`
		Count     int           `json:"count"`
		NextAfter string        `json:"next_after"`
		Traces    []TraceRecord `json:"traces"`
	}
	_, body := get(t, srv, "/traces?limit=2")
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("page 1: %v\n%s", err, body)
	}
	if p.Total != 5 || p.Count != 2 || p.NextAfter != "pub:p1" {
		t.Fatalf("page 1 = %+v", p)
	}
	var seen []string
	for _, tr := range p.Traces {
		seen = append(seen, string(tr.ID))
	}
	// Follow the cursor until exhaustion.
	for p.NextAfter != "" {
		_, body = get(t, srv, "/traces?limit=2&after="+p.NextAfter)
		p.NextAfter = ""
		if err := json.Unmarshal([]byte(body), &p); err != nil {
			t.Fatalf("page: %v\n%s", err, body)
		}
		for _, tr := range p.Traces {
			seen = append(seen, string(tr.ID))
		}
	}
	if len(seen) != 5 {
		t.Fatalf("paged through %d traces, want 5: %v", len(seen), seen)
	}
	for i, id := range seen {
		if want := fmt.Sprintf("pub:p%d", i); id != want {
			t.Fatalf("page order: seen[%d] = %s, want %s", i, id, want)
		}
	}
}

func TestHandlerSpans(t *testing.T) {
	srv := httptest.NewServer(newTestRegistry(t).Handler())
	defer srv.Close()

	_, body := get(t, srv, "/spans")
	var p struct {
		Total int                `json:"total"`
		Spans []MovementTimeline `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("spans json: %v\n%s", err, body)
	}
	if p.Total != 1 || len(p.Spans) != 1 || p.Spans[0].Tx != "x1" || p.Spans[0].Outcome != "committed" {
		t.Fatalf("spans = %+v", p)
	}
}

func TestHandlerSpansPagination(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 4; i++ {
		tx := fmt.Sprintf("x%d", i)
		r.Spans().Observe(tx, "c1", "b1", StepMoveRequested, time.Unix(int64(3000+i), 0), "")
		r.Spans().Observe(tx, "c1", "b1", StepCommitted, time.Unix(int64(3100+i), 0), "")
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	var p struct {
		Total     int                `json:"total"`
		Count     int                `json:"count"`
		NextAfter string             `json:"next_after"`
		Spans     []MovementTimeline `json:"spans"`
	}
	_, body := get(t, srv, "/spans?limit=3")
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("page 1: %v\n%s", err, body)
	}
	if p.Total != 4 || p.Count != 3 || p.NextAfter == "" {
		t.Fatalf("page 1 = total=%d count=%d next=%q", p.Total, p.Count, p.NextAfter)
	}
	_, body = get(t, srv, "/spans?limit=3&after="+p.NextAfter)
	p.NextAfter = "" // omitted on the last page; Unmarshal leaves stale values
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("page 2: %v\n%s", err, body)
	}
	if p.Count != 1 || p.NextAfter != "" {
		t.Fatalf("page 2 = count=%d next=%q", p.Count, p.NextAfter)
	}
}

func TestHandlerJournal(t *testing.T) {
	r := newTestRegistry(t)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	// No journal attached: the endpoint 404s rather than serving nothing.
	resp, _ := get(t, srv, "/journal")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("detached journal status = %d, want 404", resp.StatusCode)
	}

	j := journal.New(0)
	j.BeginRun("test")
	for i := 0; i < 6; i++ {
		tx := ""
		if i%2 == 0 {
			tx = "x1"
		}
		j.Add(journal.Record{Site: "b1", Cat: journal.CatBroker, Kind: journal.KindDispatch, Tx: tx, Lamport: uint64(i + 1)})
	}
	r.SetJournal(j)

	var p struct {
		Total     int              `json:"total"`
		Count     int              `json:"count"`
		NextAfter string           `json:"next_after"`
		Records   []journal.Record `json:"records"`
	}
	_, body := get(t, srv, "/journal?limit=4")
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("journal json: %v\n%s", err, body)
	}
	// 7 records: the run-config meta record BeginRun wrote plus the 6 added.
	if p.Total != 7 || p.Count != 4 || p.NextAfter == "" {
		t.Fatalf("page 1 = total=%d count=%d next=%q", p.Total, p.Count, p.NextAfter)
	}
	_, body = get(t, srv, "/journal?limit=4&after="+p.NextAfter)
	p.NextAfter = "" // omitted on the last page; Unmarshal leaves stale values
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("page 2: %v\n%s", err, body)
	}
	if p.Count != 3 || p.NextAfter != "" {
		t.Fatalf("page 2 = count=%d next=%q", p.Count, p.NextAfter)
	}

	// Transaction filter.
	_, body = get(t, srv, "/journal?tx=x1")
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("tx filter: %v\n%s", err, body)
	}
	if p.Total != 3 || p.Count != 3 {
		t.Fatalf("tx filter = total=%d count=%d", p.Total, p.Count)
	}
	for _, rec := range p.Records {
		if rec.Tx != "x1" {
			t.Fatalf("tx filter leaked %+v", rec)
		}
	}

	// Run filter: everything is run 1; run 2 is empty.
	_, body = get(t, srv, "/journal?run=2")
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("run filter: %v\n%s", err, body)
	}
	if p.Total != 0 {
		t.Fatalf("run 2 total = %d", p.Total)
	}

	if resp, _ := get(t, srv, "/journal?after=notanumber"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor status = %d, want 400", resp.StatusCode)
	}
}

func TestHandlerPprof(t *testing.T) {
	srv := httptest.NewServer(newTestRegistry(t).Handler())
	defer srv.Close()

	resp, body := get(t, srv, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", resp.StatusCode)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index unexpected:\n%.200s", body)
	}
}

func TestServe(t *testing.T) {
	r := newTestRegistry(t)
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
