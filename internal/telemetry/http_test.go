package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"padres/internal/message"
)

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	bm := NewBrokerMetrics()
	bm.Processed.Add(7)
	r.RegisterBroker("b1", bm)
	r.Traces().RecordHop("pub:p1", "b1", "b2", message.KindPublish, time.Unix(3000, 0))
	r.Spans().Observe("x1", "c1", "b1", StepMoveRequested, time.Unix(3000, 0), "")
	r.Spans().Observe("x1", "c1", "b1", StepCommitted, time.Unix(3001, 0), "")
	return r
}

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestHandlerMetrics(t *testing.T) {
	srv := httptest.NewServer(newTestRegistry(t).Handler())
	defer srv.Close()

	resp, body := get(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"padres_uptime_seconds",
		"padres_traces_stored 1",
		"padres_movement_timelines_completed 1",
		`padres_broker_processed_total{broker="b1"} 7`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerExtraExposition(t *testing.T) {
	r := newTestRegistry(t)
	r.AddExposition(func(w io.Writer) {
		fmt.Fprintln(w, "padres_custom_metric 42")
	})
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	_, body := get(t, srv, "/metrics")
	if !strings.Contains(body, "padres_custom_metric 42") {
		t.Fatalf("extra exposition missing:\n%s", body)
	}
}

func TestHandlerHealthz(t *testing.T) {
	srv := httptest.NewServer(newTestRegistry(t).Handler())
	defer srv.Close()

	resp, body := get(t, srv, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var h struct {
		Status  string   `json:"status"`
		Uptime  float64  `json:"uptime_seconds"`
		Brokers []string `json:"brokers"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz json: %v\n%s", err, body)
	}
	if h.Status != "ok" || len(h.Brokers) != 1 || h.Brokers[0] != "b1" {
		t.Fatalf("healthz = %+v", h)
	}
}

func TestHandlerTraces(t *testing.T) {
	srv := httptest.NewServer(newTestRegistry(t).Handler())
	defer srv.Close()

	_, body := get(t, srv, "/traces")
	var all []TraceRecord
	if err := json.Unmarshal([]byte(body), &all); err != nil {
		t.Fatalf("traces json: %v\n%s", err, body)
	}
	if len(all) != 1 || all[0].ID != "pub:p1" {
		t.Fatalf("traces = %+v", all)
	}

	_, body = get(t, srv, "/traces?id=pub:p1")
	var one TraceRecord
	if err := json.Unmarshal([]byte(body), &one); err != nil {
		t.Fatalf("trace json: %v\n%s", err, body)
	}
	if len(one.Hops) != 1 || one.Hops[0].Kind != "publish" {
		t.Fatalf("trace = %+v", one)
	}

	resp, _ := get(t, srv, "/traces?id=pub:nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace status = %d, want 404", resp.StatusCode)
	}
}

func TestHandlerSpans(t *testing.T) {
	srv := httptest.NewServer(newTestRegistry(t).Handler())
	defer srv.Close()

	_, body := get(t, srv, "/spans")
	var spans []MovementTimeline
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("spans json: %v\n%s", err, body)
	}
	if len(spans) != 1 || spans[0].Tx != "x1" || spans[0].Outcome != "committed" {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestHandlerPprof(t *testing.T) {
	srv := httptest.NewServer(newTestRegistry(t).Handler())
	defer srv.Close()

	resp, body := get(t, srv, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", resp.StatusCode)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index unexpected:\n%.200s", body)
	}
}

func TestServe(t *testing.T) {
	r := newTestRegistry(t)
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
