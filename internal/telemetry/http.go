package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"padres/internal/journal"
	"padres/internal/message"
)

// Registry aggregates a process's telemetry: per-broker runtime metrics,
// the trace store, the movement span recorder, and any extra Prometheus
// exposition callbacks (e.g. the experiment harness's link-traffic
// matrix). Its Handler exposes everything over HTTP.
type Registry struct {
	mu         sync.Mutex
	brokers    map[string]*BrokerMetrics
	stores     map[string]*StoreMetrics
	repls      map[string]*ReplicationMetrics
	transports []*TransportMetrics
	extra      []func(io.Writer)
	families   []func(*PromBuilder)
	traces     *TraceStore
	spans      *SpanRecorder
	jnl        *journal.Journal
	started    time.Time
}

// NewRegistry returns a registry with default-bounded trace and span
// stores.
func NewRegistry() *Registry {
	return &Registry{
		brokers: make(map[string]*BrokerMetrics),
		stores:  make(map[string]*StoreMetrics),
		repls:   make(map[string]*ReplicationMetrics),
		traces:  NewTraceStore(0, 0),
		spans:   NewSpanRecorder(0),
		started: time.Now(),
	}
}

// RegisterBroker attaches one broker's instruments under its ID.
func (r *Registry) RegisterBroker(id message.BrokerID, bm *BrokerMetrics) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.brokers[string(id)] = bm
}

// RegisterStore attaches one broker's durable-store instruments under its
// ID; the padres_store_* series appear on /metrics alongside the broker's.
func (r *Registry) RegisterStore(id message.BrokerID, sm *StoreMetrics) {
	if sm == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stores[string(id)] = sm
}

// RegisterReplication attaches one broker's decision-replication
// instruments under its ID; the padres_replication_* series appear on
// /metrics alongside the broker's.
func (r *Registry) RegisterReplication(id message.BrokerID, rm *ReplicationMetrics) {
	if rm == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.repls[string(id)] = rm
}

// RegisterTransport attaches a transport's reliability instruments; the
// padres_transport_* and per-link padres_link_* series appear on /metrics.
func (r *Registry) RegisterTransport(tm *TransportMetrics) {
	if tm == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.transports = append(r.transports, tm)
}

// Traces returns the registry's trace store.
func (r *Registry) Traces() *TraceStore { return r.traces }

// Spans returns the registry's movement span recorder.
func (r *Registry) Spans() *SpanRecorder { return r.spans }

// SetJournal attaches a flight-recorder journal so its records are served
// on /journal. A nil journal detaches the endpoint.
func (r *Registry) SetJournal(j *journal.Journal) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.jnl = j
}

// Journal returns the attached flight recorder (nil when detached).
func (r *Registry) Journal() *journal.Journal {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jnl
}

// AddExposition registers an extra callback invoked on every /metrics
// scrape; callbacks must emit valid Prometheus text lines, including their
// own # HELP / # TYPE headers (they are appended verbatim after the
// registry's own families).
func (r *Registry) AddExposition(f func(io.Writer)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.extra = append(r.extra, f)
}

// AddFamilies registers a callback that contributes families to the
// registry's exposition builder, so external series merge into the
// conformant family-grouped output (preferred over AddExposition).
func (r *Registry) AddFamilies(f func(*PromBuilder)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.families = append(r.families, f)
}

// WritePrometheus emits all registered instruments in Prometheus text
// format: family-grouped with one HELP/TYPE pair per family, deterministic
// ordering, escaped label values.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	ids := make([]string, 0, len(r.brokers))
	for id := range r.brokers {
		ids = append(ids, id)
	}
	brokers := make(map[string]*BrokerMetrics, len(r.brokers))
	for id, bm := range r.brokers {
		brokers[id] = bm
	}
	stores := make(map[string]*StoreMetrics, len(r.stores))
	for id, sm := range r.stores {
		stores[id] = sm
	}
	repls := make(map[string]*ReplicationMetrics, len(r.repls))
	for id, rm := range r.repls {
		repls[id] = rm
	}
	transports := make([]*TransportMetrics, len(r.transports))
	copy(transports, r.transports)
	families := make([]func(*PromBuilder), len(r.families))
	copy(families, r.families)
	extra := make([]func(io.Writer), len(r.extra))
	copy(extra, r.extra)
	jnl := r.jnl
	r.mu.Unlock()
	sort.Strings(ids)

	pb := NewPromBuilder()
	pb.GaugeFloat("padres_uptime_seconds", "Seconds since the registry started.", nil, time.Since(r.started).Seconds())
	pb.Gauge("padres_traces_stored", "Message traces currently held.", nil, int64(r.traces.Len()))
	pb.Counter("padres_traces_evicted_total", "Message traces evicted by the store bound.", nil, r.traces.Evicted())
	pb.Gauge("padres_movement_timelines_completed", "Completed movement timelines held.", nil, int64(len(r.spans.Completed())))
	pb.Gauge("padres_movement_timelines_active", "Movement transactions currently in flight.", nil, int64(r.spans.ActiveCount()))
	phases := r.spans.PhaseHistograms()
	for _, p := range phaseNames {
		pb.Histogram("padres_movement_phase_seconds", "Movement transaction duration per 3PC phase (plus total).",
			[]Label{{"phase", p}}, phases[p])
	}
	for _, id := range ids {
		brokers[id].writeProm(pb, id)
		if sm := stores[id]; sm != nil {
			sm.writeProm(pb, id)
		}
		if rm := repls[id]; rm != nil {
			rm.writeProm(pb, id)
		}
	}
	for _, tm := range transports {
		tm.writeProm(pb)
	}
	if jnl.Enabled() {
		pb.Gauge("padres_journal_records", "Journal records currently held by the ring.", nil, int64(jnl.Len()))
		pb.Counter("padres_journal_dropped_total",
			"Journal records overwritten by the ring bound; a non-zero value degrades the live audit to LOSSY.",
			nil, int64(jnl.Dropped()))
	}
	for _, f := range families {
		f(pb)
	}
	pb.Emit(w)
	for _, f := range extra {
		f(w)
	}
}

// DefaultPageLimit bounds one page of /traces, /spans, or /journal output
// when the request does not pass ?limit=.
const DefaultPageLimit = 256

// pageParams parses the shared pagination query parameters: ?limit= bounds
// the page size (default DefaultPageLimit) and ?after= is the opaque cursor
// returned by the previous page.
func pageParams(req *http.Request) (limit int, after string) {
	limit = DefaultPageLimit
	if s := req.URL.Query().Get("limit"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			limit = n
		}
	}
	return limit, req.URL.Query().Get("after")
}

// page is the JSON envelope of a paginated endpoint. NextAfter is the
// cursor of the following page; empty when this page is the last. For
// /journal the cursor is a Lamport position ("lamport.seq") and Dropped
// reports the ring's overwrite count so a paginating client can tell when
// records below its cursor were lost between pages.
type page struct {
	Total     int    `json:"total"`
	Count     int    `json:"count"`
	NextAfter string `json:"next_after,omitempty"`
	Dropped   uint64 `json:"dropped,omitempty"`
	Traces    any    `json:"traces,omitempty"`
	Spans     any    `json:"spans,omitempty"`
	Active    any    `json:"active,omitempty"`
	Records   any    `json:"records,omitempty"`
}

// Handler returns the telemetry HTTP mux:
//
//	/metrics        Prometheus text exposition
//	/healthz        JSON liveness summary
//	/traces         paginated traces (?id= selects one; ?limit=, ?after=)
//	/spans          paginated movement timelines (?limit=, ?after=)
//	/journal        paginated flight-recorder records (?limit=, ?after=,
//	                ?run=, ?tx=) when a journal is attached; the cursor is
//	                a Lamport position "lamport.seq"
//	/journal/stream chunked JSONL tail of the journal (?after=, ?dropped=);
//	                replays surviving records past the cursor, then streams
//	                live appends, interleaving tail-loss markers for gaps
//	/debug/pprof/   Go runtime profiles
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		r.mu.Lock()
		ids := make([]string, 0, len(r.brokers))
		for id := range r.brokers {
			ids = append(ids, id)
		}
		r.mu.Unlock()
		sort.Strings(ids)
		writeJSON(w, map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(r.started).Seconds(),
			"brokers":        ids,
		})
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, req *http.Request) {
		if id := req.URL.Query().Get("id"); id != "" {
			tr, ok := r.traces.Get(message.TraceID(id))
			if !ok {
				http.Error(w, "unknown trace", http.StatusNotFound)
				return
			}
			writeJSON(w, tr)
			return
		}
		limit, after := pageParams(req)
		all := r.traces.Snapshot()
		p := page{Total: len(all)}
		start := 0
		if after != "" {
			for i, tr := range all {
				if string(tr.ID) == after {
					start = i + 1
					break
				}
			}
		}
		end := min(start+limit, len(all))
		sel := all[start:end]
		p.Count = len(sel)
		if end < len(all) && len(sel) > 0 {
			p.NextAfter = string(sel[len(sel)-1].ID)
		}
		p.Traces = sel
		writeJSON(w, p)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, req *http.Request) {
		limit, after := pageParams(req)
		all := r.spans.Completed()
		p := page{Total: len(all)}
		start := 0
		if after != "" {
			for i, s := range all {
				if s.Tx == after {
					start = i + 1
					break
				}
			}
		}
		end := min(start+limit, len(all))
		sel := all[start:end]
		p.Count = len(sel)
		if end < len(all) && len(sel) > 0 {
			p.NextAfter = sel[len(sel)-1].Tx
		}
		p.Spans = sel
		// In-flight movements ride on every page: they are a live view, not
		// part of the paginated completed stream.
		if act := r.spans.Active(); len(act) > 0 {
			p.Active = act
		}
		writeJSON(w, p)
	})
	mux.HandleFunc("/journal", func(w http.ResponseWriter, req *http.Request) {
		j := r.Journal()
		if !j.Enabled() {
			http.Error(w, "no journal attached", http.StatusNotFound)
			return
		}
		limit, after := pageParams(req)
		q := req.URL.Query()
		recs := j.Snapshot()
		// The cursor is a Lamport position, not a ring index: it survives
		// ring overwrites (an overwritten record is simply no longer below
		// the cursor) and broker restarts. Sorting by (Lamport, Seq) makes
		// the cursor order total and the page windows stable.
		journal.SortByCursor(recs)
		// Optional filters restrict before pagination so a page is always
		// a window of the filtered stream.
		if runStr := q.Get("run"); runStr != "" {
			run, err := strconv.ParseInt(runStr, 10, 64)
			if err != nil {
				http.Error(w, "bad run", http.StatusBadRequest)
				return
			}
			recs = filterRecords(recs, func(rec journal.Record) bool { return rec.Run == run })
		}
		if tx := q.Get("tx"); tx != "" {
			recs = filterRecords(recs, func(rec journal.Record) bool { return rec.Tx == tx })
		}
		p := page{Total: len(recs), Dropped: j.Dropped()}
		start := 0
		if after != "" {
			cur, err := journal.ParseCursor(after)
			if err != nil {
				http.Error(w, "bad cursor", http.StatusBadRequest)
				return
			}
			start = sort.Search(len(recs), func(i int) bool {
				return cur.Less(journal.CursorOf(recs[i]))
			})
		}
		end := min(start+limit, len(recs))
		sel := recs[start:end]
		p.Count = len(sel)
		if end < len(recs) && len(sel) > 0 {
			p.NextAfter = journal.CursorOf(sel[len(sel)-1]).String()
		}
		p.Records = sel
		writeJSON(w, p)
	})
	mux.HandleFunc("/journal/stream", func(w http.ResponseWriter, req *http.Request) {
		r.serveJournalStream(w, req)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// filterRecords keeps the records matching keep, preserving order.
func filterRecords(recs []journal.Record, keep func(journal.Record) bool) []journal.Record {
	out := recs[:0:0]
	for _, r := range recs {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server is a running telemetry HTTP endpoint.
type Server struct {
	srv  *http.Server
	addr net.Addr
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.addr.String() }

// Close shuts the endpoint down.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// Serve binds addr and serves the registry's Handler in a background
// goroutine until Close.
func (r *Registry) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, addr: ln.Addr()}, nil
}
