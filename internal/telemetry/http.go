package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"

	"padres/internal/message"
)

// Registry aggregates a process's telemetry: per-broker runtime metrics,
// the trace store, the movement span recorder, and any extra Prometheus
// exposition callbacks (e.g. the experiment harness's link-traffic
// matrix). Its Handler exposes everything over HTTP.
type Registry struct {
	mu      sync.Mutex
	brokers map[string]*BrokerMetrics
	extra   []func(io.Writer)
	traces  *TraceStore
	spans   *SpanRecorder
	started time.Time
}

// NewRegistry returns a registry with default-bounded trace and span
// stores.
func NewRegistry() *Registry {
	return &Registry{
		brokers: make(map[string]*BrokerMetrics),
		traces:  NewTraceStore(0, 0),
		spans:   NewSpanRecorder(0),
		started: time.Now(),
	}
}

// RegisterBroker attaches one broker's instruments under its ID.
func (r *Registry) RegisterBroker(id message.BrokerID, bm *BrokerMetrics) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.brokers[string(id)] = bm
}

// Traces returns the registry's trace store.
func (r *Registry) Traces() *TraceStore { return r.traces }

// Spans returns the registry's movement span recorder.
func (r *Registry) Spans() *SpanRecorder { return r.spans }

// AddExposition registers an extra callback invoked on every /metrics
// scrape; callbacks must emit valid Prometheus text lines.
func (r *Registry) AddExposition(f func(io.Writer)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.extra = append(r.extra, f)
}

// WritePrometheus emits all registered instruments in Prometheus text
// format with deterministic ordering.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	ids := make([]string, 0, len(r.brokers))
	for id := range r.brokers {
		ids = append(ids, id)
	}
	brokers := make(map[string]*BrokerMetrics, len(r.brokers))
	for id, bm := range r.brokers {
		brokers[id] = bm
	}
	extra := make([]func(io.Writer), len(r.extra))
	copy(extra, r.extra)
	r.mu.Unlock()
	sort.Strings(ids)

	fmt.Fprintf(w, "padres_uptime_seconds %g\n", time.Since(r.started).Seconds())
	fmt.Fprintf(w, "padres_traces_stored %d\n", r.traces.Len())
	fmt.Fprintf(w, "padres_traces_evicted_total %d\n", r.traces.Evicted())
	fmt.Fprintf(w, "padres_movement_timelines_completed %d\n", len(r.spans.Completed()))
	fmt.Fprintf(w, "padres_movement_timelines_active %d\n", r.spans.ActiveCount())
	for _, id := range ids {
		brokers[id].writePrometheus(w, id)
	}
	for _, f := range extra {
		f(w)
	}
}

// Handler returns the telemetry HTTP mux:
//
//	/metrics        Prometheus text exposition
//	/healthz        JSON liveness summary
//	/traces         JSON dump of stored traces (?id= selects one)
//	/spans          JSON dump of completed movement timelines
//	/debug/pprof/   Go runtime profiles
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		r.mu.Lock()
		ids := make([]string, 0, len(r.brokers))
		for id := range r.brokers {
			ids = append(ids, id)
		}
		r.mu.Unlock()
		sort.Strings(ids)
		writeJSON(w, map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(r.started).Seconds(),
			"brokers":        ids,
		})
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, req *http.Request) {
		if id := req.URL.Query().Get("id"); id != "" {
			tr, ok := r.traces.Get(message.TraceID(id))
			if !ok {
				http.Error(w, "unknown trace", http.StatusNotFound)
				return
			}
			writeJSON(w, tr)
			return
		}
		writeJSON(w, r.traces.Snapshot())
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, r.spans.Completed())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server is a running telemetry HTTP endpoint.
type Server struct {
	srv  *http.Server
	addr net.Addr
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.addr.String() }

// Close shuts the endpoint down.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// Serve binds addr and serves the registry's Handler in a background
// goroutine until Close.
func (r *Registry) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, addr: ln.Addr()}, nil
}
