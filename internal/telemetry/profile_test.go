package telemetry

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestProfilerCapturesBundles(t *testing.T) {
	dir := t.TempDir()
	p, err := StartProfiler(ProfileOptions{
		Dir:      dir,
		Interval: 2 * time.Second,
		// CPUSeconds is clamped to 1s by the small interval; Stop aborts
		// the in-progress CPU window early, so the test stays fast.
	})
	if err != nil {
		t.Fatal(err)
	}
	// Give the first capture a moment to open its files, then stop — the
	// CPU window aborts and the snapshot profiles are still written.
	time.Sleep(100 * time.Millisecond)
	p.Stop()
	if err := p.Err(); err != nil {
		t.Fatalf("capture error: %v", err)
	}

	bundle := filepath.Join(dir, "bundle-000001")
	for _, name := range []string{"cpu.pprof", "heap.pprof", "mutex.pprof", "goroutine.pprof"} {
		fi, err := os.Stat(filepath.Join(bundle, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name != "cpu.pprof" && fi.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestProfilerRetention(t *testing.T) {
	dir := t.TempDir()
	// Pre-seed stale bundles; the profiler's retention pass must delete the
	// oldest beyond MaxBundles.
	for _, b := range []string{"bundle-000001", "bundle-000002", "bundle-000003"} {
		if err := os.MkdirAll(filepath.Join(dir, b), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	p := &Profiler{opts: ProfileOptions{Dir: dir, MaxBundles: 2}.withDefaults()}
	p.opts.MaxBundles = 2
	p.retain()
	if _, err := os.Stat(filepath.Join(dir, "bundle-000001")); !os.IsNotExist(err) {
		t.Error("oldest bundle survived retention")
	}
	for _, b := range []string{"bundle-000002", "bundle-000003"} {
		if _, err := os.Stat(filepath.Join(dir, b)); err != nil {
			t.Errorf("%s: %v", b, err)
		}
	}
}

func TestProfilerRejectsEmptyDir(t *testing.T) {
	if _, err := StartProfiler(ProfileOptions{}); err == nil {
		t.Fatal("empty dir accepted")
	}
}
