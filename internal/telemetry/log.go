package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync"
)

// Structured logging with per-component levels. Components obtain a logger
// once (telemetry.Logger("broker")) and log through it; operators tune
// verbosity per component at runtime with SetLogLevel or a spec string like
// "info,broker=debug,transport=warn".

var logState = struct {
	mu     sync.Mutex
	out    io.Writer
	def    slog.Level
	levels map[string]*slog.LevelVar
}{
	out:    os.Stderr,
	def:    slog.LevelInfo,
	levels: make(map[string]*slog.LevelVar),
}

// levelVar returns the component's level variable, creating it at the
// current default level.
func levelVar(component string) *slog.LevelVar {
	lv, ok := logState.levels[component]
	if !ok {
		lv = new(slog.LevelVar)
		lv.Set(logState.def)
		logState.levels[component] = lv
	}
	return lv
}

// Logger returns a structured logger for the component, honouring the
// component's (runtime-adjustable) level.
func Logger(component string) *slog.Logger {
	logState.mu.Lock()
	lv := levelVar(component)
	out := logState.out
	logState.mu.Unlock()
	h := slog.NewTextHandler(out, &slog.HandlerOptions{Level: lv})
	return slog.New(h).With("component", component)
}

// SetLogLevel sets one component's level; the empty component ("" or "*")
// sets the default for components seen so far and created later.
func SetLogLevel(component string, level slog.Level) {
	logState.mu.Lock()
	defer logState.mu.Unlock()
	if component == "" || component == "*" {
		logState.def = level
		for _, lv := range logState.levels {
			lv.Set(level)
		}
		return
	}
	levelVar(component).Set(level)
}

// SetLogOutput redirects all loggers created afterwards (tests use this).
func SetLogOutput(w io.Writer) {
	logState.mu.Lock()
	defer logState.mu.Unlock()
	logState.out = w
}

// ParseLevel parses debug/info/warn/error.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
	}
}

// ConfigureLogLevels applies a spec of comma-separated entries, each either
// a bare default level or component=level, e.g.
// "info,broker=debug,transport=warn".
func ConfigureLogLevels(spec string) error {
	if strings.TrimSpace(spec) == "" {
		return nil
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		component, levelStr, found := strings.Cut(entry, "=")
		if !found {
			levelStr, component = component, ""
		}
		level, err := ParseLevel(levelStr)
		if err != nil {
			return fmt.Errorf("log spec entry %q: %w", entry, err)
		}
		SetLogLevel(strings.TrimSpace(component), level)
	}
	return nil
}
