package telemetry

import "sync"

// Canonical broker pipeline stage names. inbox_wait and match exist on
// every broker; commit_wait and egress_flush are registered by the
// parallel dispatch pipeline when it starts, so their absence on a
// serial-dispatch broker is visible to monitors instead of reading as a
// dead instrument.
const (
	StageInboxWait   = "inbox_wait"
	StageMatch       = "match"
	StageCommitWait  = "commit_wait"
	StageEgressFlush = "egress_flush"
)

// StageSet is a named-histogram registry: each pipeline stage registers a
// latency histogram under a stable name, and monitors snapshot the whole
// set without knowing the stage list ahead of time. Registration takes the
// set's mutex; observation is on the returned *Histogram and stays
// lock-free, so the hot path never touches the registry again.
type StageSet struct {
	mu    sync.Mutex
	order []string
	hists map[string]*Histogram
}

// NewStageSet returns an empty stage registry.
func NewStageSet() *StageSet {
	return &StageSet{hists: make(map[string]*Histogram)}
}

// Register returns the named stage histogram, creating it with the default
// latency buckets on first registration. Idempotent: a second Register of
// the same name returns the same histogram.
func (ss *StageSet) Register(name string) *Histogram {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if h, ok := ss.hists[name]; ok {
		return h
	}
	h := NewLatencyHistogram()
	ss.hists[name] = h
	ss.order = append(ss.order, name)
	return h
}

// Attach registers an existing histogram under a stage name, letting a
// stage share an instrument that predates the registry (the match stage is
// the broker's MatchLatency histogram). A name already registered keeps
// its histogram.
func (ss *StageSet) Attach(name string, h *Histogram) *Histogram {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if existing, ok := ss.hists[name]; ok {
		return existing
	}
	ss.hists[name] = h
	ss.order = append(ss.order, name)
	return h
}

// Get returns the named histogram, or nil when unregistered.
func (ss *StageSet) Get(name string) *Histogram {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.hists[name]
}

// Names returns the registered stage names in registration order.
func (ss *StageSet) Names() []string {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	out := make([]string, len(ss.order))
	copy(out, ss.order)
	return out
}

// Snapshot copies every registered stage histogram.
func (ss *StageSet) Snapshot() map[string]HistogramSnapshot {
	ss.mu.Lock()
	names := make([]string, len(ss.order))
	copy(names, ss.order)
	hists := make([]*Histogram, len(names))
	for i, n := range names {
		hists[i] = ss.hists[n]
	}
	ss.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(names))
	for i, n := range names {
		out[n] = hists[i].Snapshot()
	}
	return out
}
