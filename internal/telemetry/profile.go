package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// ProfileOptions tunes the continuous profiler.
type ProfileOptions struct {
	// Dir receives the profile bundles (created if missing).
	Dir string
	// Interval is the time between bundle captures (default 30s).
	Interval time.Duration
	// CPUSeconds is the CPU profile duration per bundle (default 5; must
	// stay below Interval).
	CPUSeconds int
	// MaxBundles bounds retention: the oldest bundle directories beyond
	// this count are deleted after each capture (default 16).
	MaxBundles int
	// MutexFraction is passed to runtime.SetMutexProfileFraction for the
	// profiler's lifetime (default 5); 0 keeps the runtime setting.
	MutexFraction int
}

func (o ProfileOptions) withDefaults() ProfileOptions {
	if o.Interval <= 0 {
		o.Interval = 30 * time.Second
	}
	if o.CPUSeconds <= 0 {
		o.CPUSeconds = 5
	}
	if d := time.Duration(o.CPUSeconds) * time.Second; d >= o.Interval {
		o.CPUSeconds = int(o.Interval / (2 * time.Second))
		if o.CPUSeconds < 1 {
			o.CPUSeconds = 1
		}
	}
	if o.MaxBundles <= 0 {
		o.MaxBundles = 16
	}
	if o.MutexFraction < 0 {
		o.MutexFraction = 0
	}
	return o
}

// Profiler periodically captures CPU/heap/mutex/goroutine pprof bundles
// under bounded retention, so load investigations start from profiles that
// were taken while the problem happened instead of after the fact. Each
// bundle is a directory bundle-<seq> holding cpu.pprof, heap.pprof,
// mutex.pprof, and goroutine.pprof.
type Profiler struct {
	opts    ProfileOptions
	seq     int
	quit    chan struct{}
	done    chan struct{}
	once    sync.Once
	prevMu  int
	setMu   bool
	lastErr error
	errMu   sync.Mutex
}

// StartProfiler begins periodic capture into opts.Dir. Stop ends it.
func StartProfiler(opts ProfileOptions) (*Profiler, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("profiler: empty dir")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("profiler: %w", err)
	}
	p := &Profiler{opts: opts, quit: make(chan struct{}), done: make(chan struct{})}
	if opts.MutexFraction > 0 {
		p.prevMu = runtime.SetMutexProfileFraction(opts.MutexFraction)
		p.setMu = true
	}
	go p.run()
	return p, nil
}

// Stop ends the capture loop, waits for an in-progress bundle to finish,
// and restores the mutex profile fraction.
func (p *Profiler) Stop() {
	p.once.Do(func() { close(p.quit) })
	<-p.done
	if p.setMu {
		runtime.SetMutexProfileFraction(p.prevMu)
	}
}

// Err returns the most recent capture error, if any; captures keep running
// after an error.
func (p *Profiler) Err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.lastErr
}

func (p *Profiler) run() {
	defer close(p.done)
	// First bundle immediately: a short-lived process still leaves one.
	for {
		if err := p.capture(); err != nil {
			p.errMu.Lock()
			p.lastErr = err
			p.errMu.Unlock()
		}
		p.retain()
		idle := p.opts.Interval - time.Duration(p.opts.CPUSeconds)*time.Second
		if idle < 0 {
			idle = 0
		}
		select {
		case <-p.quit:
			return
		case <-time.After(idle):
		}
	}
}

// capture writes one bundle. The CPU profile runs for CPUSeconds (aborted
// early on Stop); the snapshot profiles are taken after it so heap/mutex
// state reflects the profiled window's end.
func (p *Profiler) capture() error {
	p.seq++
	dir := filepath.Join(p.opts.Dir, fmt.Sprintf("bundle-%06d", p.seq))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return err
	}
	select {
	case <-p.quit:
	case <-time.After(time.Duration(p.opts.CPUSeconds) * time.Second):
	}
	pprof.StopCPUProfile()
	if err := cpu.Close(); err != nil {
		return err
	}
	for _, name := range []string{"heap", "mutex", "goroutine"} {
		f, err := os.Create(filepath.Join(dir, name+".pprof"))
		if err != nil {
			return err
		}
		err = pprof.Lookup(name).WriteTo(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// retain deletes the oldest bundles beyond MaxBundles. Bundle names embed
// a monotone sequence number, so lexical order is age order.
func (p *Profiler) retain() {
	entries, err := os.ReadDir(p.opts.Dir)
	if err != nil {
		return
	}
	var bundles []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") {
			bundles = append(bundles, e.Name())
		}
	}
	sort.Strings(bundles)
	for len(bundles) > p.opts.MaxBundles {
		os.RemoveAll(filepath.Join(p.opts.Dir, bundles[0]))
		bundles = bundles[1:]
	}
}
