package telemetry

import (
	"testing"
	"time"
)

// observeSequence feeds a step list for one tx into the recorder, one
// millisecond apart starting at base.
func observeSequence(r *SpanRecorder, tx string, base time.Time, steps []string) {
	for i, s := range steps {
		broker := "b1"
		switch s {
		case "negotiate-received", "approve-sent", "reject-sent", "state-received", "ack-sent":
			broker = "b13"
		}
		r.Observe(tx, "c1", broker, s, base.Add(time.Duration(i)*time.Millisecond), "")
	}
}

func TestSpanRecorderCommittedPhases(t *testing.T) {
	r := NewSpanRecorder(0)
	base := time.Unix(2000, 0)
	observeSequence(r, "x1", base, []string{
		"move-requested", "negotiate-sent", "negotiate-received", "approve-sent",
		"approve-received", "state-sent", "state-received", "ack-sent",
		"ack-received", "committed",
	})

	done := r.Completed()
	if len(done) != 1 {
		t.Fatalf("completed = %d, want 1", len(done))
	}
	tl := done[0]
	if tl.Outcome != "committed" || tl.Tx != "x1" || tl.Client != "c1" {
		t.Fatalf("timeline = %+v", tl)
	}
	if tl.Duration() != 9*time.Millisecond {
		t.Fatalf("duration = %v, want 9ms", tl.Duration())
	}
	if len(tl.Phases) != 4 {
		t.Fatalf("phases = %+v", tl.Phases)
	}
	wantDur := map[string]time.Duration{
		PhaseInit:      1 * time.Millisecond, // move-requested -> negotiate-sent
		PhasePrepare:   3 * time.Millisecond, // negotiate-sent -> approve-received
		PhasePrecommit: 4 * time.Millisecond, // approve-received -> ack-received
		PhaseCommit:    1 * time.Millisecond, // ack-received -> committed
	}
	for name, want := range wantDur {
		p, ok := tl.Phase(name)
		if !ok {
			t.Fatalf("phase %s missing", name)
		}
		if p.Duration() != want {
			t.Errorf("phase %s = %v, want %v", name, p.Duration(), want)
		}
	}
	if r.ActiveCount() != 0 {
		t.Fatalf("active = %d, want 0", r.ActiveCount())
	}
}

func TestSpanRecorderRejectedMove(t *testing.T) {
	r := NewSpanRecorder(0)
	base := time.Unix(2000, 0)
	observeSequence(r, "x2", base, []string{
		"move-requested", "negotiate-sent", "negotiate-received", "reject-sent",
		"reject-received", "aborted",
	})

	done := r.Completed()
	if len(done) != 1 {
		t.Fatalf("completed = %d, want 1", len(done))
	}
	tl := done[0]
	if tl.Outcome != "aborted" {
		t.Fatalf("outcome = %s", tl.Outcome)
	}
	abort, ok := tl.Phase(PhaseAbort)
	if !ok {
		t.Fatalf("no abort phase: %+v", tl.Phases)
	}
	// Abort runs from reject-received (t=4ms) to aborted (t=5ms), and the
	// prepare phase is truncated at the trigger.
	if abort.Duration() != time.Millisecond {
		t.Errorf("abort = %v, want 1ms", abort.Duration())
	}
	prep, ok := tl.Phase(PhasePrepare)
	if !ok {
		t.Fatalf("no prepare phase: %+v", tl.Phases)
	}
	if prep.Duration() != 3*time.Millisecond {
		t.Errorf("prepare = %v, want 3ms (truncated at reject)", prep.Duration())
	}
}

func TestSpanRecorderTimeoutAbort(t *testing.T) {
	r := NewSpanRecorder(0)
	base := time.Unix(2000, 0)
	observeSequence(r, "x3", base, []string{
		"move-requested", "negotiate-sent", "source-timeout", "abort-sent", "aborted",
	})
	done := r.Completed()
	if len(done) != 1 {
		t.Fatalf("completed = %d", len(done))
	}
	abort, ok := done[0].Phase(PhaseAbort)
	if !ok {
		t.Fatalf("no abort phase: %+v", done[0].Phases)
	}
	// Trigger is the source-timeout at t=2ms; aborted lands at t=4ms.
	if abort.Duration() != 2*time.Millisecond {
		t.Errorf("abort = %v, want 2ms", abort.Duration())
	}
}

func TestSpanRecorderIgnoresEmptyTx(t *testing.T) {
	r := NewSpanRecorder(0)
	r.Observe("", "c1", "b1", "client-state", time.Unix(2000, 0), "started->pause_move")
	if r.ActiveCount() != 0 || len(r.Completed()) != 0 {
		t.Fatal("empty tx recorded")
	}
}

func TestSpanRecorderBound(t *testing.T) {
	r := NewSpanRecorder(2)
	base := time.Unix(2000, 0)
	for _, tx := range []string{"x1", "x2", "x3"} {
		observeSequence(r, tx, base, []string{"move-requested", "committed"})
	}
	done := r.Completed()
	if len(done) != 2 || done[0].Tx != "x2" || done[1].Tx != "x3" {
		t.Fatalf("completed = %+v", done)
	}
	if r.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", r.Dropped())
	}
	r.Reset()
	if len(r.Completed()) != 0 || r.Dropped() != 0 {
		t.Fatal("reset did not clear")
	}
}
