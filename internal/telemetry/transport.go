package telemetry

import (
	"fmt"
	"io"
)

// TransportMetrics holds the reliability layer's instruments for one
// transport (the in-process network plus any TCP gateways bridged to it).
// All fields are lock-free atomics; the transport hot path records into
// them without taking the network mutex.
type TransportMetrics struct {
	// Retransmits counts resend-queue copies put back on the wire after a
	// backoff expiry (in-process links and TCP replay alike).
	Retransmits Counter
	// DupesDropped counts received frames the dedup layer suppressed
	// because their sequence number was already delivered.
	DupesDropped Counter
	// Acks counts cumulative acknowledgements sent.
	Acks Counter
	// DeadLetters counts reliable messages abandoned because their link's
	// circuit breaker was open or its resend queue was drained on trip.
	DeadLetters Counter
	// InjectedDrops / InjectedDups / InjectedReorders count messages the
	// fault injector dropped, duplicated, or swapped out of order
	// (partition drops count as InjectedDrops).
	InjectedDrops    Counter
	InjectedDups     Counter
	InjectedReorders Counter
	// LinksDown is the number of directed links whose circuit breaker is
	// currently open.
	LinksDown Gauge
	// LinksPartitioned is the number of directed links currently severed by
	// the fault injector.
	LinksPartitioned Gauge
	// Reconnects counts successful TCP peer re-establishments by the
	// gateway's auto-reconnect supervisor.
	Reconnects Counter
}

// WritePrometheus emits the transport instruments in Prometheus text
// format. Deterministic output ordering, matching the broker exposition.
func (tm *TransportMetrics) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "padres_transport_retransmits_total %d\n", tm.Retransmits.Value())
	fmt.Fprintf(w, "padres_transport_dupes_dropped_total %d\n", tm.DupesDropped.Value())
	fmt.Fprintf(w, "padres_transport_acks_total %d\n", tm.Acks.Value())
	fmt.Fprintf(w, "padres_transport_dead_letters_total %d\n", tm.DeadLetters.Value())
	fmt.Fprintf(w, "padres_transport_injected_drops_total %d\n", tm.InjectedDrops.Value())
	fmt.Fprintf(w, "padres_transport_injected_dups_total %d\n", tm.InjectedDups.Value())
	fmt.Fprintf(w, "padres_transport_injected_reorders_total %d\n", tm.InjectedReorders.Value())
	fmt.Fprintf(w, "padres_transport_links_down %d\n", tm.LinksDown.Value())
	fmt.Fprintf(w, "padres_transport_links_partitioned %d\n", tm.LinksPartitioned.Value())
	fmt.Fprintf(w, "padres_transport_reconnects_total %d\n", tm.Reconnects.Value())
}
