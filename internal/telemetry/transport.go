package telemetry

import (
	"io"
	"sort"
	"sync"
)

// TransportMetrics holds the reliability layer's instruments for one
// transport (the in-process network plus any TCP gateways bridged to it).
// All counters are lock-free atomics; the transport hot path records into
// them without taking the network mutex. Per-link instruments are handed
// out once per directed link (Link takes a mutex) and observed lock-free
// after that.
type TransportMetrics struct {
	// Retransmits counts resend-queue copies put back on the wire after a
	// backoff expiry (in-process links and TCP replay alike).
	Retransmits Counter
	// DupesDropped counts received frames the dedup layer suppressed
	// because their sequence number was already delivered.
	DupesDropped Counter
	// Acks counts cumulative acknowledgements sent.
	Acks Counter
	// DeadLetters counts reliable messages abandoned because their link's
	// circuit breaker was open or its resend queue was drained on trip.
	DeadLetters Counter
	// InjectedDrops / InjectedDups / InjectedReorders count messages the
	// fault injector dropped, duplicated, or swapped out of order
	// (partition drops count as InjectedDrops).
	InjectedDrops    Counter
	InjectedDups     Counter
	InjectedReorders Counter
	// LinksDown is the number of directed links whose circuit breaker is
	// currently open.
	LinksDown Gauge
	// LinksPartitioned is the number of directed links currently severed by
	// the fault injector.
	LinksPartitioned Gauge
	// Reconnects counts successful TCP peer re-establishments by the
	// gateway's auto-reconnect supervisor.
	Reconnects Counter

	mu    sync.Mutex
	links map[LinkKey]*LinkMetrics
	order []LinkKey
}

// LinkKey identifies one directed link by its endpoint node IDs.
type LinkKey struct {
	From string
	To   string
}

// LinkMetrics holds one directed reliable link's health instruments.
type LinkMetrics struct {
	// RTT measures send-to-cumulative-ack round trips of entries that were
	// never retransmitted (retransmitted entries have ambiguous RTTs).
	RTT *Histogram
	// Retransmits counts this link's resend-queue copies put on the wire.
	Retransmits Counter
	// DeadLetters counts messages this link's breaker abandoned.
	DeadLetters Counter
	// Up is 1 while the link's circuit breaker is closed, 0 while open.
	Up Gauge
	// ResendDepth mirrors the resend queue length (unacked entries).
	ResendDepth Gauge
}

// Link returns the directed link's instruments, creating them on first use
// with the breaker closed (Up=1).
func (tm *TransportMetrics) Link(from, to string) *LinkMetrics {
	key := LinkKey{From: from, To: to}
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if lm, ok := tm.links[key]; ok {
		return lm
	}
	if tm.links == nil {
		tm.links = make(map[LinkKey]*LinkMetrics)
	}
	lm := &LinkMetrics{RTT: NewLatencyHistogram()}
	lm.Up.Set(1)
	tm.links[key] = lm
	tm.order = append(tm.order, key)
	return lm
}

// Links returns the per-link instruments keyed by directed link, in a
// fresh map safe for the caller to iterate.
func (tm *TransportMetrics) Links() map[LinkKey]*LinkMetrics {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	out := make(map[LinkKey]*LinkMetrics, len(tm.links))
	for k, lm := range tm.links {
		out[k] = lm
	}
	return out
}

// writeProm adds the transport instruments to the exposition builder,
// link families sorted by (from, to) for deterministic output.
func (tm *TransportMetrics) writeProm(pb *PromBuilder) {
	pb.Counter("padres_transport_retransmits_total", "Resend-queue copies put back on the wire.", nil, tm.Retransmits.Value())
	pb.Counter("padres_transport_dupes_dropped_total", "Received frames suppressed by receive-side dedup.", nil, tm.DupesDropped.Value())
	pb.Counter("padres_transport_acks_total", "Cumulative acknowledgements sent.", nil, tm.Acks.Value())
	pb.Counter("padres_transport_dead_letters_total", "Reliable messages abandoned by an open circuit breaker.", nil, tm.DeadLetters.Value())
	pb.Counter("padres_transport_injected_drops_total", "Messages dropped by the fault injector.", nil, tm.InjectedDrops.Value())
	pb.Counter("padres_transport_injected_dups_total", "Messages duplicated by the fault injector.", nil, tm.InjectedDups.Value())
	pb.Counter("padres_transport_injected_reorders_total", "Messages reordered by the fault injector.", nil, tm.InjectedReorders.Value())
	pb.Gauge("padres_transport_links_down", "Directed links with an open circuit breaker.", nil, tm.LinksDown.Value())
	pb.Gauge("padres_transport_links_partitioned", "Directed links severed by the fault injector.", nil, tm.LinksPartitioned.Value())
	pb.Counter("padres_transport_reconnects_total", "Successful TCP peer re-establishments.", nil, tm.Reconnects.Value())

	type linkEntry struct {
		key LinkKey
		lm  *LinkMetrics
	}
	tm.mu.Lock()
	entries := make([]linkEntry, 0, len(tm.order))
	for _, k := range tm.order {
		entries = append(entries, linkEntry{key: k, lm: tm.links[k]})
	}
	tm.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key.From != entries[j].key.From {
			return entries[i].key.From < entries[j].key.From
		}
		return entries[i].key.To < entries[j].key.To
	})
	for _, e := range entries {
		lm := e.lm
		l := []Label{{"from", e.key.From}, {"to", e.key.To}}
		pb.Histogram("padres_link_rtt_seconds", "Send-to-ack round trip of never-retransmitted entries.", l, lm.RTT.Snapshot())
		pb.Counter("padres_link_retransmits_total", "This link's resend copies put on the wire.", l, lm.Retransmits.Value())
		pb.Counter("padres_link_dead_letters_total", "Messages this link's breaker abandoned.", l, lm.DeadLetters.Value())
		pb.Gauge("padres_link_up", "1 while the link's circuit breaker is closed.", l, lm.Up.Value())
		pb.Gauge("padres_link_resend_depth", "Resend queue length (unacknowledged entries).", l, lm.ResendDepth.Value())
	}
}

// WritePrometheus emits the transport instruments in Prometheus text
// format as a self-contained exposition fragment.
func (tm *TransportMetrics) WritePrometheus(w io.Writer) {
	pb := NewPromBuilder()
	tm.writeProm(pb)
	pb.Emit(w)
}
