package telemetry

import (
	"sort"
	"sync"
	"time"

	"padres/internal/message"
)

// Hop records one transmission of a traced message over a link (or its
// injection into a broker by a co-located client or coordinator).
type Hop struct {
	Seq  int            `json:"seq"`
	From message.NodeID `json:"from"`
	To   message.NodeID `json:"to"`
	Kind string         `json:"kind"`
	At   time.Time      `json:"at"`
}

// TraceRecord reconstructs one message's path through the overlay. A
// publication keeps its PubID as brokers forward it hop-by-hop, so all its
// transmissions share one trace; the control messages of a movement
// transaction share the transaction's trace, with Kind distinguishing the
// protocol steps.
type TraceRecord struct {
	ID        message.TraceID `json:"id"`
	FirstSeen time.Time       `json:"first_seen"`
	LastSeen  time.Time       `json:"last_seen"`
	Hops      []Hop           `json:"hops"`
	// TruncatedHops counts hops discarded because the per-trace bound was
	// reached.
	TruncatedHops int `json:"truncated_hops,omitempty"`
}

// Default TraceStore bounds.
const (
	DefaultMaxTraces       = 4096
	DefaultMaxHopsPerTrace = 256
)

// TraceStore is a bounded in-memory store of message traces. When the trace
// bound is reached the oldest trace (by first hop) is evicted; when a single
// trace reaches its hop bound further hops are counted but not stored.
type TraceStore struct {
	mu        sync.Mutex
	maxTraces int
	maxHops   int
	traces    map[message.TraceID]*TraceRecord
	order     []message.TraceID // insertion order, for FIFO eviction
	evicted   int64
}

// NewTraceStore returns an empty store with the given bounds (values <= 0
// select the defaults).
func NewTraceStore(maxTraces, maxHopsPerTrace int) *TraceStore {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	if maxHopsPerTrace <= 0 {
		maxHopsPerTrace = DefaultMaxHopsPerTrace
	}
	return &TraceStore{
		maxTraces: maxTraces,
		maxHops:   maxHopsPerTrace,
		traces:    make(map[message.TraceID]*TraceRecord),
	}
}

// RecordHop appends one hop to the trace, creating it if needed, and
// returns the hop's sequence number within the trace.
func (s *TraceStore) RecordHop(id message.TraceID, from, to message.NodeID, kind message.Kind, at time.Time) int {
	if id == "" {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tr, ok := s.traces[id]
	if !ok {
		if len(s.order) >= s.maxTraces {
			oldest := s.order[0]
			s.order = s.order[1:]
			delete(s.traces, oldest)
			s.evicted++
		}
		tr = &TraceRecord{ID: id, FirstSeen: at}
		s.traces[id] = tr
		s.order = append(s.order, id)
	}
	tr.LastSeen = at
	seq := len(tr.Hops) + tr.TruncatedHops + 1
	if len(tr.Hops) >= s.maxHops {
		tr.TruncatedHops++
		return seq
	}
	tr.Hops = append(tr.Hops, Hop{Seq: seq, From: from, To: to, Kind: kind.String(), At: at})
	return seq
}

// Get returns a copy of one trace.
func (s *TraceStore) Get(id message.TraceID) (TraceRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr, ok := s.traces[id]
	if !ok {
		return TraceRecord{}, false
	}
	return copyTrace(tr), true
}

// Snapshot returns copies of all stored traces, ordered by first-seen time
// (ties broken by ID) so dumps are deterministic.
func (s *TraceStore) Snapshot() []TraceRecord {
	s.mu.Lock()
	out := make([]TraceRecord, 0, len(s.traces))
	for _, tr := range s.traces {
		out = append(out, copyTrace(tr))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].FirstSeen.Equal(out[j].FirstSeen) {
			return out[i].FirstSeen.Before(out[j].FirstSeen)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len returns the number of stored traces.
func (s *TraceStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.traces)
}

// Evicted returns the number of traces discarded to respect the bound.
func (s *TraceStore) Evicted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

func copyTrace(tr *TraceRecord) TraceRecord {
	out := *tr
	out.Hops = make([]Hop, len(tr.Hops))
	copy(out.Hops, tr.Hops)
	return out
}
