package telemetry

import (
	"log/slog"
	"os"
	"strings"
	"sync"
	"testing"
)

// logBuf is a concurrency-safe writer for capturing log output.
type logBuf struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *logBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *logBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug":   slog.LevelDebug,
		"Info":    slog.LevelInfo,
		" warn ":  slog.LevelWarn,
		"warning": slog.LevelWarn,
		"ERROR":   slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) succeeded")
	}
}

func TestConfigureLogLevelsErrors(t *testing.T) {
	if err := ConfigureLogLevels("info,broker=loud"); err == nil {
		t.Error("bad component level accepted")
	}
	if err := ConfigureLogLevels("nope"); err == nil {
		t.Error("bad default level accepted")
	}
	if err := ConfigureLogLevels(""); err != nil {
		t.Errorf("empty spec = %v", err)
	}
}

func TestPerComponentLevels(t *testing.T) {
	var buf logBuf
	SetLogOutput(&buf)
	defer SetLogOutput(os.Stderr)
	if err := ConfigureLogLevels("warn,chatty=debug"); err != nil {
		t.Fatal(err)
	}
	defer SetLogLevel("", slog.LevelInfo)

	Logger("chatty").Debug("visible")
	Logger("quiet").Debug("hidden")
	Logger("quiet").Warn("also visible")

	out := buf.String()
	if !strings.Contains(out, "visible") || !strings.Contains(out, "component=chatty") {
		t.Errorf("debug log for tuned component missing:\n%s", out)
	}
	if strings.Contains(out, "msg=hidden") {
		t.Errorf("suppressed debug log leaked:\n%s", out)
	}
	if !strings.Contains(out, "also visible") {
		t.Errorf("warn log missing:\n%s", out)
	}
}
