package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Movement phases of the 3PC-style movement transaction, derived from the
// source coordinator's protocol steps (the client and coordinator state
// machines of the paper's Figs. 4 and 5):
//
//	init      move requested until the negotiate message leaves the source
//	prepare   negotiate sent until the target's approval arrives (the
//	          target creates the shell and — per protocol — prepares
//	          routing hop-by-hop or waits for re-subscription quiescence)
//	precommit approval received until the target's ack arrives (client
//	          stopped, state transferred, client restarted at the target)
//	commit    ack received until the transaction is recorded committed
//	          (includes the end-to-end protocol's propagation wait)
//	abort     the failure path: from the last completed boundary to the
//	          recorded abort
const (
	PhaseInit      = "init"
	PhasePrepare   = "prepare"
	PhasePrecommit = "precommit"
	PhaseCommit    = "commit"
	PhaseAbort     = "abort"
)

// Protocol step names the span recorder keys phase boundaries on. They
// mirror internal/core's event names (kept as strings so telemetry does not
// import core).
const (
	StepMoveRequested   = "move-requested"
	StepNegotiateSent   = "negotiate-sent"
	StepApproveReceived = "approve-received"
	StepAckReceived     = "ack-received"
	StepCommitted       = "committed"
	StepAborted         = "aborted"
)

// Step is one observed protocol step (from either coordinator).
type Step struct {
	Name   string    `json:"name"`
	Broker string    `json:"broker"`
	At     time.Time `json:"at"`
	Detail string    `json:"detail,omitempty"`
}

// PhaseSpan is one phase of a movement with its measured boundaries.
type PhaseSpan struct {
	Phase string    `json:"phase"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// Duration returns the span length.
func (p PhaseSpan) Duration() time.Duration { return p.End.Sub(p.Start) }

// MovementTimeline is the reconstructed phase breakdown of one movement
// transaction, with the raw steps from both coordinators attached.
type MovementTimeline struct {
	Tx      string      `json:"tx"`
	Client  string      `json:"client"`
	Outcome string      `json:"outcome"` // "committed" or "aborted"
	Start   time.Time   `json:"start"`
	End     time.Time   `json:"end"`
	Phases  []PhaseSpan `json:"phases"`
	Steps   []Step      `json:"steps"`
}

// Duration returns the whole movement's wall-clock duration.
func (t MovementTimeline) Duration() time.Duration { return t.End.Sub(t.Start) }

// Phase returns the named phase span, if present.
func (t MovementTimeline) Phase(name string) (PhaseSpan, bool) {
	for _, p := range t.Phases {
		if p.Phase == name {
			return p, true
		}
	}
	return PhaseSpan{}, false
}

// DefaultMaxTimelines bounds the completed-timeline buffer.
const DefaultMaxTimelines = 65536

// SpanRecorder turns protocol steps into per-movement phase timelines. It
// is fed by an event sink installed on the movement coordinators (see
// internal/core.PhaseSink) and is safe for concurrent use. Completed
// timelines are kept in a bounded FIFO buffer.
type SpanRecorder struct {
	mu        sync.Mutex
	max       int
	active    map[string]*MovementTimeline
	completed []MovementTimeline
	dropped   int64
	// phase holds one latency histogram per movement phase (plus "total"),
	// observed when a timeline closes — the durable per-phase distribution
	// the ad-hoc span arithmetic could not provide.
	phase map[string]*Histogram
}

// PhaseTotal is the pseudo-phase name of the whole movement duration in
// the recorder's phase histograms.
const PhaseTotal = "total"

// phaseNames lists every phase histogram the recorder maintains, in
// protocol order.
var phaseNames = []string{PhaseInit, PhasePrepare, PhasePrecommit, PhaseCommit, PhaseAbort, PhaseTotal}

// NewSpanRecorder returns a recorder keeping at most max completed
// timelines (<= 0 selects the default).
func NewSpanRecorder(max int) *SpanRecorder {
	if max <= 0 {
		max = DefaultMaxTimelines
	}
	r := &SpanRecorder{max: max, active: make(map[string]*MovementTimeline)}
	r.phase = make(map[string]*Histogram, len(phaseNames))
	for _, p := range phaseNames {
		r.phase[p] = NewLatencyHistogram()
	}
	return r
}

// Observe records one protocol step of transaction tx. Terminal steps
// (committed, aborted) close the timeline and move it to the completed
// buffer. Steps with an empty tx are ignored.
func (r *SpanRecorder) Observe(tx, client, broker, step string, at time.Time, detail string) {
	if tx == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tl, ok := r.active[tx]
	if !ok {
		tl = &MovementTimeline{Tx: tx, Client: client, Start: at}
		r.active[tx] = tl
	}
	if tl.Client == "" {
		tl.Client = client
	}
	tl.Steps = append(tl.Steps, Step{Name: step, Broker: broker, At: at, Detail: detail})
	if step != StepCommitted && step != StepAborted {
		return
	}
	tl.End = at
	if step == StepCommitted {
		tl.Outcome = "committed"
	} else {
		tl.Outcome = "aborted"
	}
	tl.Phases = buildPhases(tl)
	for _, p := range tl.Phases {
		if h := r.phase[p.Phase]; h != nil {
			h.Observe(p.Duration())
		}
	}
	r.phase[PhaseTotal].Observe(tl.Duration())
	delete(r.active, tx)
	if len(r.completed) >= r.max {
		drop := len(r.completed) - r.max + 1
		r.completed = append(r.completed[:0], r.completed[drop:]...)
		r.dropped += int64(drop)
	}
	r.completed = append(r.completed, *tl)
}

// buildPhases derives the phase spans from the source-side step times that
// were observed. Failure paths yield a trailing abort phase from the last
// completed boundary.
func buildPhases(tl *MovementTimeline) []PhaseSpan {
	at := func(name string) (time.Time, bool) {
		for _, s := range tl.Steps {
			if s.Name == name {
				return s.At, true
			}
		}
		return time.Time{}, false
	}
	boundaries := []struct {
		phase string
		step  string
	}{
		{PhaseInit, StepMoveRequested},
		{PhasePrepare, StepNegotiateSent},
		{PhasePrecommit, StepApproveReceived},
		{PhaseCommit, StepAckReceived},
	}
	var phases []PhaseSpan
	last := tl.Start
	haveLast := false
	for i, b := range boundaries {
		start, ok := at(b.step)
		if !ok {
			continue
		}
		// The phase runs from this boundary to the next observed one (or
		// the terminal event).
		end := tl.End
		for j := i + 1; j < len(boundaries); j++ {
			if t, ok2 := at(boundaries[j].step); ok2 {
				end = t
				break
			}
		}
		phases = append(phases, PhaseSpan{Phase: b.phase, Start: start, End: end})
		last = end
		haveLast = true
	}
	if tl.Outcome == "aborted" {
		// The abort phase starts at the step that triggered the rollback
		// (reject, timeout, or an abort message crossing the coordinator);
		// the phase the movement was in keeps the time up to that trigger.
		start := tl.End
		for _, s := range tl.Steps {
			switch s.Name {
			case "reject-received", "abort-sent", "abort-received",
				"source-timeout", "target-timeout":
				start = s.At
			}
			if !start.Equal(tl.End) {
				break
			}
		}
		if start.Equal(tl.End) && haveLast {
			start = last
		}
		if start.Equal(tl.End) {
			start = tl.Start
		}
		if n := len(phases); n > 0 && phases[n-1].End.After(start) {
			phases[n-1].End = start
		}
		phases = append(phases, PhaseSpan{Phase: PhaseAbort, Start: start, End: tl.End})
	}
	return phases
}

// Completed returns a copy of the completed timelines in completion order.
func (r *SpanRecorder) Completed() []MovementTimeline {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MovementTimeline, len(r.completed))
	copy(out, r.completed)
	return out
}

// ActiveCount returns the number of movements still in flight.
func (r *SpanRecorder) ActiveCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.active)
}

// Active returns copies of the in-flight movement timelines (End unset),
// ordered by start time — the live in-flight-moves view.
func (r *SpanRecorder) Active() []MovementTimeline {
	r.mu.Lock()
	out := make([]MovementTimeline, 0, len(r.active))
	for _, tl := range r.active {
		cp := *tl
		cp.Steps = append([]Step(nil), tl.Steps...)
		out = append(out, cp)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].Tx < out[j].Tx
	})
	return out
}

// PhaseHistograms snapshots the per-phase latency histograms (keys are the
// Phase* constants plus PhaseTotal).
func (r *SpanRecorder) PhaseHistograms() map[string]HistogramSnapshot {
	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.phase))
	for p, h := range r.phase {
		hists[p] = h
	}
	r.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(hists))
	for p, h := range hists {
		out[p] = h.Snapshot()
	}
	return out
}

// PhaseQuantiles folds a set of completed timelines into per-phase
// histograms (keys as in PhaseHistograms). The experiment harness uses it
// to derive percentile columns from its own collected timelines without a
// recorder.
func PhaseQuantiles(tls []MovementTimeline) map[string]HistogramSnapshot {
	hists := make(map[string]*Histogram, len(phaseNames))
	for _, p := range phaseNames {
		hists[p] = NewLatencyHistogram()
	}
	for _, tl := range tls {
		for _, p := range tl.Phases {
			if h := hists[p.Phase]; h != nil {
				h.Observe(p.Duration())
			}
		}
		hists[PhaseTotal].Observe(tl.Duration())
	}
	out := make(map[string]HistogramSnapshot, len(hists))
	for p, h := range hists {
		out[p] = h.Snapshot()
	}
	return out
}

// Dropped returns how many completed timelines the bound discarded.
func (r *SpanRecorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset clears completed timelines (active ones are kept).
func (r *SpanRecorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.completed = nil
	r.dropped = 0
}
