package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"

	"padres/internal/journal"
)

// dedupMargin bounds the seq set used to drop the overlap between the
// snapshot phase and the live tap. Only records appended in the window
// between Subscribe and Snapshot can appear in both, so remembering the
// newest snapshot sequences is enough.
const dedupMargin = 1 << 14

// serveJournalStream implements GET /journal/stream: a chunked JSONL tail
// of the flight recorder. The response replays the ring's surviving records
// after the ?after= cursor (a Lamport position, "lamport.seq"), then stays
// open streaming every new append until the client disconnects.
//
// Loss is made explicit instead of silent: when the resume cursor points
// below the oldest surviving record and the ring has overwritten more
// records than the client accounted for (?dropped= carries the drop count
// from its previous connection), and whenever the live tap's buffer
// overflows, a synthetic tail-loss meta record (journal.KindTailLoss) is
// interleaved into the stream so a consumer like the streaming auditor can
// degrade the affected interval to LOSSY.
func (r *Registry) serveJournalStream(w http.ResponseWriter, req *http.Request) {
	j := r.Journal()
	if !j.Enabled() {
		http.Error(w, "no journal attached", http.StatusNotFound)
		return
	}
	q := req.URL.Query()
	cur, err := journal.ParseCursor(q.Get("after"))
	if err != nil {
		http.Error(w, "bad cursor", http.StatusBadRequest)
		return
	}
	var knownDropped uint64
	if s := q.Get("dropped"); s != "" {
		if knownDropped, err = strconv.ParseUint(s, 10, 64); err != nil {
			http.Error(w, "bad dropped count", http.StatusBadRequest)
			return
		}
	}

	// Subscribe before snapshotting so no append can fall between the two;
	// the overlap is deduplicated by sequence number below.
	tap := j.Subscribe(0)
	defer tap.Close()
	snap := j.Snapshot()
	journal.SortByCursor(snap)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(rec journal.Record) bool {
		if err := enc.Encode(rec); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	// A cursor below the ring's oldest surviving record is a gap when the
	// ring overwrote records the client has not accounted for — including
	// the zero cursor of a consumer attaching after overwrites began: it
	// wants the whole stream and the overwritten prefix is gone.
	if dropped := j.Dropped(); dropped > knownDropped {
		gap := len(snap) == 0
		if !gap {
			gap = cur.Less(journal.CursorOf(snap[0]))
		}
		if gap {
			var upTo uint64
			if len(snap) > 0 {
				upTo = snap[0].Lamport
			}
			if !emit(journal.TailLossRecord(j.Run(), upTo, dropped-knownDropped)) {
				return
			}
		}
	}

	var maxSeq uint64
	seen := make(map[uint64]struct{})
	for _, rec := range snap {
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
	}
	for _, rec := range snap {
		if maxSeq-rec.Seq < dedupMargin {
			seen[rec.Seq] = struct{}{}
		}
		if !cur.Less(journal.CursorOf(rec)) {
			continue
		}
		if !emit(rec) {
			return
		}
	}

	var lossNoted uint64
	for {
		select {
		case <-req.Context().Done():
			return
		case rec, ok := <-tap.C():
			if !ok {
				return
			}
			if _, dup := seen[rec.Seq]; dup {
				continue
			}
			if d := tap.Dropped(); d > lossNoted {
				if !emit(journal.TailLossRecord(rec.Run, rec.Lamport, d-lossNoted)) {
					return
				}
				lossNoted = d
			}
			if !emit(rec) {
				return
			}
		}
	}
}
