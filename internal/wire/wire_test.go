package wire

import (
	"bytes"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, 1<<40+17)
	b = AppendString(b, "hello")
	b = AppendString(b, "")
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendBytes(b, nil)
	b = AppendF64(b, -12.5)
	b = AppendF64(b, math.Inf(1))
	b = AppendBool(b, true)
	b = AppendBool(b, false)

	u, rest, err := Uvarint(b)
	if err != nil || u != 0 {
		t.Fatalf("uvarint: %v %v", u, err)
	}
	u, rest, err = Uvarint(rest)
	if err != nil || u != 1<<40+17 {
		t.Fatalf("uvarint: %v %v", u, err)
	}
	s, rest, err := String(rest)
	if err != nil || s != "hello" {
		t.Fatalf("string: %q %v", s, err)
	}
	s, rest, err = String(rest)
	if err != nil || s != "" {
		t.Fatalf("empty string: %q %v", s, err)
	}
	p, rest, err := Bytes(rest)
	if err != nil || !bytes.Equal(p, []byte{1, 2, 3}) {
		t.Fatalf("bytes: %v %v", p, err)
	}
	p, rest, err = Bytes(rest)
	if err != nil || p != nil {
		t.Fatalf("nil bytes: %v %v", p, err)
	}
	f, rest, err := F64(rest)
	if err != nil || f != -12.5 {
		t.Fatalf("f64: %v %v", f, err)
	}
	f, rest, err = F64(rest)
	if err != nil || !math.IsInf(f, 1) {
		t.Fatalf("f64 inf: %v %v", f, err)
	}
	v, rest, err := Bool(rest)
	if err != nil || !v {
		t.Fatalf("bool: %v %v", v, err)
	}
	v, rest, err = Bool(rest)
	if err != nil || v {
		t.Fatalf("bool: %v %v", v, err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
}

// TestTruncation feeds every proper prefix of an encoded sequence to the
// decoders and requires a clean error, never a panic or a bogus value.
func TestTruncation(t *testing.T) {
	var b []byte
	b = AppendString(b, "abcdef")
	b = AppendF64(b, 3.25)
	b = AppendUvarint(b, 300)
	for i := 0; i < len(b); i++ {
		pre := b[:i]
		s, rest, err := String(pre)
		if err == nil {
			f, rest2, err2 := F64(rest)
			if err2 == nil {
				if _, _, err3 := Uvarint(rest2); err3 == nil {
					t.Fatalf("prefix %d decoded fully (s=%q f=%v)", i, s, f)
				}
			}
		}
	}
}

// TestBytesIsCopy guards the contract that decoded byte slices do not
// alias the input buffer (which stream decoders reuse between frames).
func TestBytesIsCopy(t *testing.T) {
	b := AppendBytes(nil, []byte{9, 9, 9})
	out, _, err := Bytes(b)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] = 0
	if out[2] != 9 {
		t.Fatal("decoded bytes alias the input buffer")
	}
}

func TestLengthBound(t *testing.T) {
	b := AppendUvarint(nil, 1<<40) // absurd length prefix, no payload
	if _, _, err := String(b); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
	if _, _, err := Bytes(b); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
}
