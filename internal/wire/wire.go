// Package wire provides the append/consume primitives shared by the
// system's compact binary codecs: the message envelope codec, the
// predicate filter/event codec, and the broker/client state snapshots.
//
// Every value is length- or tag-prefixed and self-delimiting, so decoders
// never scan for terminators: integers are unsigned varints, strings and
// byte slices are varint-length-prefixed, and float64s are fixed 8-byte
// little-endian IEEE 754 bit patterns. Unlike encoding/gob there are no
// type descriptors on the wire — the frame layout is fixed by the schema
// version byte each codec writes at the head of its payload — so encoding
// the same value twice costs the same bytes twice.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated reports that a decoder ran out of input mid-value.
var ErrTruncated = errors.New("wire: truncated input")

// maxLen bounds any single length prefix (strings, byte slices, element
// counts) so a corrupt or hostile frame cannot drive an allocation of
// arbitrary size before the payload bound check catches it.
const maxLen = 1 << 26

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// Uvarint consumes an unsigned varint from b, returning the remainder.
func Uvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, ErrTruncated
	}
	return v, b[n:], nil
}

// Len consumes a varint length prefix, validating it against both the
// sanity bound and the bytes actually remaining.
func Len(b []byte) (int, []byte, error) {
	v, rest, err := Uvarint(b)
	if err != nil {
		return 0, nil, err
	}
	if v > maxLen {
		return 0, nil, fmt.Errorf("wire: length %d exceeds bound %d", v, maxLen)
	}
	return int(v), rest, nil
}

// AppendString appends a varint-length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// String consumes a length-prefixed string.
func String(b []byte) (string, []byte, error) {
	n, rest, err := Len(b)
	if err != nil {
		return "", nil, err
	}
	if len(rest) < n {
		return "", nil, ErrTruncated
	}
	return string(rest[:n]), rest[n:], nil
}

// AppendBytes appends a varint-length-prefixed byte slice.
func AppendBytes(b []byte, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// Bytes consumes a length-prefixed byte slice. The result is a copy, so
// it stays valid after the caller's read buffer is reused.
func Bytes(b []byte) ([]byte, []byte, error) {
	n, rest, err := Len(b)
	if err != nil {
		return nil, nil, err
	}
	if len(rest) < n {
		return nil, nil, ErrTruncated
	}
	if n == 0 {
		return nil, rest, nil
	}
	out := make([]byte, n)
	copy(out, rest[:n])
	return out, rest[n:], nil
}

// AppendF64 appends an IEEE 754 float64 as 8 little-endian bytes.
func AppendF64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// F64 consumes an 8-byte float64.
func F64(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrTruncated
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

// AppendBool appends a bool as one byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// Bool consumes a one-byte bool; any nonzero byte reads as true.
func Bool(b []byte) (bool, []byte, error) {
	if len(b) < 1 {
		return false, nil, ErrTruncated
	}
	return b[0] != 0, b[1:], nil
}

// Byte consumes a single byte.
func Byte(b []byte) (byte, []byte, error) {
	if len(b) < 1 {
		return 0, nil, ErrTruncated
	}
	return b[0], b[1:], nil
}
