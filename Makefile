GO ?= go

# Benchmark knobs: COUNT repeats each benchmark so benchjson can average
# out scheduler noise before judging the journaling-overhead budget.
BENCH_COUNT ?= 3
BENCH_TIME  ?= 50000x
BENCH_OUT   ?= BENCH_journal.json

# Audit knobs: a small figure-8 mobility run (both protocols, well over
# ten movements) whose journal the offline auditor must certify.
AUDIT_JOURNAL ?= /tmp/padres-audit-run.jsonl
AUDIT_FLAGS   ?= -fig 8 -clients 12 -duration 3s

.PHONY: all vet build test race ci bench audit

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the hot-path benchmarks (matching, broker dispatch, journal
# append) and emits $(BENCH_OUT); benchjson fails the target when the
# flight recorder's dispatch overhead exceeds its 5% budget.
bench:
	$(GO) test ./internal/matching/ ./internal/broker/ ./internal/journal/ \
		-run '^$$' -bench . -benchtime $(BENCH_TIME) -count $(BENCH_COUNT) \
		| tee bench.out.txt
	$(GO) run ./cmd/benchjson -out $(BENCH_OUT) bench.out.txt
	@echo "wrote $(BENCH_OUT)"

# audit records a mobility experiment to a JSONL journal, then replays it
# through the offline auditor; padres-audit exits non-zero on any
# violation of the paper's mobility properties, failing the target.
audit:
	$(GO) run ./cmd/experiments $(AUDIT_FLAGS) -journal $(AUDIT_JOURNAL)
	$(GO) run ./cmd/padres-audit $(AUDIT_JOURNAL)

ci: vet build race
