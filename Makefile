GO ?= go

# Benchmark knobs: COUNT repeats each benchmark so benchjson can average
# out scheduler noise before judging the journaling-overhead budget.
BENCH_COUNT ?= 3
BENCH_TIME  ?= 50000x
BENCH_OUT   ?= BENCH_journal.json

# Dispatch-scaling knobs: each iteration pays the simulated 2ms service
# time, so the iteration count stays small; benchjson -require-scaling
# fails the target unless Workers=4 delivers >= 2x over Workers=1.
DISPATCH_COUNT ?= 3
DISPATCH_TIME  ?= 300x
DISPATCH_OUT   ?= BENCH_dispatch.json

# Audit knobs: a small figure-8 mobility run (both protocols, well over
# ten movements) whose journal the offline auditor must certify.
AUDIT_JOURNAL ?= /tmp/padres-audit-run.jsonl
AUDIT_FLAGS   ?= -fig 8 -clients 12 -duration 3s

# Reliability-overhead knobs: each run interleaves the reliable/best-effort
# testbeds in chunks and reports noise-trimmed per-mode costs; benchjson
# takes the median over RELIABILITY_COUNT runs before judging the 5%
# loss-free overhead budget.
RELIABILITY_COUNT ?= 15
RELIABILITY_TIME  ?= 262144x
RELIABILITY_OUT   ?= BENCH_reliability.json

# Chaos-soak knobs: a fixed seed keeps the loss/dup/reorder/partition and
# crash schedules reproducible run to run. CHAOS_DATA is the broker
# durable-store root for the recovery soak (wiped at the start of each run).
CHAOS_SEED  ?= 7
CHAOS_MOVES ?= 200
CHAOS_DATA  ?= /tmp/padres-chaos-data

# WAL-overhead knobs: the benchmark interleaves durable and in-memory
# dispatch testbeds; benchjson takes the median over WAL_COUNT runs before
# judging the 5% group-commit overhead budget.
WAL_COUNT ?= 7
WAL_TIME  ?= 20000x
WAL_OUT   ?= BENCH_wal.json

# Telemetry-overhead knobs: the benchmark interleaves an instrumented and a
# bare (stage timing off) dispatch pipeline; benchjson takes the median
# over TELEMETRY_COUNT runs before judging the 5% observability budget.
TELEMETRY_COUNT ?= 7
TELEMETRY_TIME  ?= 20000x
TELEMETRY_OUT   ?= BENCH_telemetry.json

# Match-scaling knobs: the matching benchmarks sweep subscription counts
# (1k vs 100k) through the counting index and the covering posting lists;
# benchjson -require-match fails the target unless 100k costs at most 2x
# 1k per match with an allocation-free hot path, and the intersection
# query stays sublinear.
MATCH_COUNT ?= 3
MATCH_TIME  ?= 20000x
MATCH_OUT   ?= BENCH_match.json

# Replication-overhead knobs: the benchmark shuttles one subscriber across
# the five-hop b1<->b13 corridor in an R=1 deployment and an R=3/W=2 one,
# interleaved in chunks; benchjson takes the median over REPLICATION_COUNT
# runs before judging the 5% move-latency budget. Each op is a full
# movement transaction (~tens of ms), so the iteration count stays small.
REPLICATION_COUNT ?= 7
REPLICATION_TIME  ?= 40x
REPLICATION_OUT   ?= BENCH_replication.json

# Sim knobs: the `sim` target sweeps SIM_SEEDS consecutive seeds of a
# SIM_BROKERS-broker scripted catastrophe (publication storms + thundering
# move herds + rolling partitions + staggered coordinator kills) in fully
# simulated time, runs every seed twice, and fails unless each seed's
# journal audits clean and reproduces byte-identically. bench-sim gates the
# clock seam: every hot-path time read goes through sim.Clock, and the
# indirection must cost the real-time dispatch path <= 5%.
SIM_SEED    ?= 1
SIM_SEEDS   ?= 10
SIM_BROKERS ?= 500
SIM_COUNT   ?= 5
SIM_TIME    ?= 10000x
SIM_OUT     ?= BENCH_sim.json

# Audit-stream knobs: the benchmark interleaves a journaled dispatch
# pipeline with and without a live journal tap subscribed; benchjson takes
# the median over AUDIT_STREAM_COUNT runs before judging the 5% budget on
# what serving /journal/stream costs the hot path.
AUDIT_STREAM_COUNT ?= 7
AUDIT_STREAM_TIME  ?= 20000x
AUDIT_STREAM_OUT   ?= BENCH_audit.json

.PHONY: all vet build test race ci bench bench-dispatch bench-reliability bench-wal bench-telemetry bench-audit-stream bench-match bench-replication bench-sim audit audit-stream chaos chaos-recovery chaos-coordinator sim

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the hot-path benchmarks (matching, broker dispatch, journal
# append) and emits $(BENCH_OUT); benchjson fails the target when the
# flight recorder's dispatch overhead exceeds its 5% budget. The bench
# regex deliberately skips DispatchScaling — its simulated service time
# would dwarf the 50000x hot-path runs; bench-dispatch covers it.
bench: bench-dispatch
	$(GO) test ./internal/matching/ ./internal/broker/ ./internal/journal/ \
		-run '^$$' -bench 'PRT|SRT|Journal|Clock|BrokerDispatch' \
		-benchtime $(BENCH_TIME) -count $(BENCH_COUNT) \
		| tee bench.out.txt
	$(GO) run ./cmd/benchjson -out $(BENCH_OUT) bench.out.txt
	@echo "wrote $(BENCH_OUT)"

# bench-dispatch measures publication-dispatch throughput of the worker
# pipeline at widths 1/2/4/8 under the fig-8-style per-message service
# time and emits $(DISPATCH_OUT); benchjson exits non-zero unless
# Workers=4 beats Workers=1 by at least 2x.
bench-dispatch:
	$(GO) test ./internal/broker/ -run '^$$' -bench '^BenchmarkDispatchScaling$$' \
		-benchtime $(DISPATCH_TIME) -count $(DISPATCH_COUNT) \
		| tee bench-dispatch.out.txt
	$(GO) run ./cmd/benchjson -require-scaling -out $(DISPATCH_OUT) bench-dispatch.out.txt
	@echo "wrote $(DISPATCH_OUT)"

# bench-reliability measures what the ack/retransmit layer costs the
# control-plane dispatch path on a loss-free link and emits
# $(RELIABILITY_OUT); benchjson exits non-zero when the median overhead
# exceeds the 5% budget or the benchmark is missing.
bench-reliability:
	$(GO) test ./internal/transport/ -run '^$$' -bench '^BenchmarkReliabilityOverhead$$' \
		-benchtime $(RELIABILITY_TIME) -count $(RELIABILITY_COUNT) \
		| tee bench-reliability.out.txt
	$(GO) run ./cmd/benchjson -require-reliability -out $(RELIABILITY_OUT) bench-reliability.out.txt
	@echo "wrote $(RELIABILITY_OUT)"

# bench-wal measures what enabling the write-ahead log costs the broker's
# publication dispatch path under a realistic routing-churn mix and emits
# $(WAL_OUT); benchjson exits non-zero when the median overhead exceeds the
# 5% budget or the benchmark is missing.
bench-wal:
	$(GO) test ./internal/broker/ -run '^$$' -bench '^BenchmarkWALOverhead$$' \
		-benchtime $(WAL_TIME) -count $(WAL_COUNT) \
		| tee bench-wal.out.txt
	$(GO) run ./cmd/benchjson -require-wal -out $(WAL_OUT) bench-wal.out.txt
	@echo "wrote $(WAL_OUT)"

# bench-telemetry measures what the latency observatory's per-stage
# instrumentation costs the dispatch hot path (clock reads for inbox-wait,
# commit-wait, and egress-flush timers) and emits $(TELEMETRY_OUT);
# benchjson exits non-zero when the median overhead exceeds the 5% budget
# or the benchmark is missing — observability must not distort what it
# observes.
bench-telemetry:
	$(GO) test ./internal/broker/ -run '^$$' -bench '^BenchmarkTelemetryOverhead$$' \
		-benchtime $(TELEMETRY_TIME) -count $(TELEMETRY_COUNT) \
		| tee bench-telemetry.out.txt
	$(GO) run ./cmd/benchjson -require-telemetry -out $(TELEMETRY_OUT) bench-telemetry.out.txt
	@echo "wrote $(TELEMETRY_OUT)"

# bench-audit-stream measures what a live journal tap (the wiring behind
# /journal/stream and the fleet auditor) costs the publication dispatch
# path on top of journaling itself, and emits $(AUDIT_STREAM_OUT);
# benchjson exits non-zero when the median overhead exceeds the 5% budget
# or the benchmark is missing — live auditing must not distort the
# dispatch path it verifies.
bench-audit-stream:
	$(GO) test ./internal/broker/ -run '^$$' -bench '^BenchmarkAuditStreamOverhead$$' \
		-benchtime $(AUDIT_STREAM_TIME) -count $(AUDIT_STREAM_COUNT) \
		| tee bench-audit-stream.out.txt
	$(GO) run ./cmd/benchjson -require-audit -out $(AUDIT_STREAM_OUT) bench-audit-stream.out.txt
	@echo "wrote $(AUDIT_STREAM_OUT)"

# bench-match is the matching-engine scale gate: the counting match and
# the covering/intersection index at 1k vs 100k subscriptions, with
# -benchmem so the zero-allocation hot-path budget is enforced. benchjson
# -require-match exits non-zero when 100k subscriptions cost more than 2x
# 1k per match, the hot path allocates, or intersection goes superlinear.
bench-match:
	$(GO) test ./internal/matching/ -run '^$$' \
		-bench 'BenchmarkPRTMatch|BenchmarkPRTIntersecting' \
		-benchtime $(MATCH_TIME) -count $(MATCH_COUNT) -benchmem \
		| tee bench-match.out.txt
	$(GO) run ./cmd/benchjson -require-match -out $(MATCH_OUT) bench-match.out.txt
	@echo "wrote $(MATCH_OUT)"

# bench-replication measures what quorum-replicating coordinator decisions
# costs the movement hot path: R=1 (no remote round) vs R=3/W=2 (pipelined
# quorum) move latency across the five-hop corridor, and emits
# $(REPLICATION_OUT); benchjson exits non-zero when the median overhead
# exceeds the 5% budget or the benchmark is missing.
bench-replication:
	$(GO) test ./internal/cluster/ -run '^$$' -bench '^BenchmarkReplicationOverhead$$' \
		-benchtime $(REPLICATION_TIME) -count $(REPLICATION_COUNT) \
		| tee bench-replication.out.txt
	$(GO) run ./cmd/benchjson -require-replication -out $(REPLICATION_OUT) bench-replication.out.txt
	@echo "wrote $(REPLICATION_OUT)"

# chaos runs the seeded soak: CHAOS_MOVES movement transactions under
# randomized loss/duplication/reordering/partitions plus broker crash and
# freeze schedules, with the race detector on. The journal is replayed
# through the offline auditor and the target fails on any violation of the
# paper's mobility properties (exactly-once delivery, 3PC phase order,
# abort atomicity).
chaos:
	$(GO) run -race ./cmd/experiments -chaos -seed $(CHAOS_SEED) -moves $(CHAOS_MOVES)

# chaos-recovery is the durability gate: the same seeded soak, but every
# broker persists to a write-ahead log + snapshots under $(CHAOS_DATA), the
# crash schedule also hits backbone brokers mid-movement, and each crashed
# broker restarts from its own disk state — recovering routing tables and
# resolving in-doubt movement transactions via the recovery query protocol.
# The audit holds restarted sites to the full convergence properties.
chaos-recovery:
	$(GO) run -race ./cmd/experiments -chaos -seed $(CHAOS_SEED) -moves $(CHAOS_MOVES) -data-dir $(CHAOS_DATA)

# chaos-coordinator is the replication gate: the same seeded soak, but every
# 12th move's TARGET COORDINATOR is crash-stopped mid-phase — cycling
# through the 3PC phases, including right after the quorum-replicated
# commit decision — and is NEVER restarted. Quorum replication must carry
# every decision to a write quorum before it acts, and lease-based standby
# takeover must finish every in-doubt move; the run fails unless at least
# one killed-coordinator move committed via takeover, no broker restarted,
# and the audit found zero violations.
chaos-coordinator:
	$(GO) run -race ./cmd/experiments -chaos -seed $(CHAOS_SEED) -moves $(CHAOS_MOVES) -kill-coordinator 12

# audit records a mobility experiment to a JSONL journal, then replays it
# through the offline auditor; padres-audit exits non-zero on any
# violation of the paper's mobility properties, failing the target.
audit:
	$(GO) run ./cmd/experiments $(AUDIT_FLAGS) -journal $(AUDIT_JOURNAL)
	$(GO) run ./cmd/padres-audit $(AUDIT_JOURNAL)

# audit-stream is the live-audit differential gate: the same recorded
# experiment, but the journal additionally replays through the streaming
# auditor as shuffled per-site chunks; padres-audit -stream exits non-zero
# unless every interleaving finalizes to exactly the batch report.
audit-stream:
	$(GO) run ./cmd/experiments $(AUDIT_FLAGS) -journal $(AUDIT_JOURNAL)
	$(GO) run ./cmd/padres-audit -stream $(AUDIT_JOURNAL)

ci: vet build race

# sim is the determinism gate: a seed sweep of scripted catastrophes at
# SIM_BROKERS brokers, entirely in simulated time on one goroutine. Every
# seed must audit clean against the paper's mobility properties AND
# reproduce its journal byte for byte when re-run; a failing seed is
# printed as a reproducer command line.
sim:
	$(GO) run ./cmd/padres-sim -seed $(SIM_SEED) -seeds $(SIM_SEEDS) -brokers $(SIM_BROKERS) -verify-determinism

# bench-sim measures what the simulator's clock seam costs the real-time
# dispatch path (every hot-path Now/Since goes through the sim.Clock
# interface now) plus the virtual event loop's raw throughput, and emits
# $(SIM_OUT); benchjson exits non-zero when the seam's median overhead
# exceeds the 5% budget or the benchmark is missing.
bench-sim:
	$(GO) test ./internal/broker/ -run '^$$' -bench '^BenchmarkSimClockOverhead$$' \
		-benchtime $(SIM_TIME) -count $(SIM_COUNT) \
		| tee bench-sim.out.txt
	$(GO) test ./internal/sim/ -run '^$$' -bench 'BenchmarkSimEventLoop|BenchmarkSimTimerChurn' \
		-benchtime 200000x | tee -a bench-sim.out.txt
	$(GO) run ./cmd/benchjson -require-sim -out $(SIM_OUT) bench-sim.out.txt
	@echo "wrote $(SIM_OUT)"
