GO ?= go

# Benchmark knobs: COUNT repeats each benchmark so benchjson can average
# out scheduler noise before judging the journaling-overhead budget.
BENCH_COUNT ?= 3
BENCH_TIME  ?= 50000x
BENCH_OUT   ?= BENCH_journal.json

# Dispatch-scaling knobs: each iteration pays the simulated 2ms service
# time, so the iteration count stays small; benchjson -require-scaling
# fails the target unless Workers=4 delivers >= 2x over Workers=1.
DISPATCH_COUNT ?= 3
DISPATCH_TIME  ?= 300x
DISPATCH_OUT   ?= BENCH_dispatch.json

# Audit knobs: a small figure-8 mobility run (both protocols, well over
# ten movements) whose journal the offline auditor must certify.
AUDIT_JOURNAL ?= /tmp/padres-audit-run.jsonl
AUDIT_FLAGS   ?= -fig 8 -clients 12 -duration 3s

.PHONY: all vet build test race ci bench bench-dispatch audit

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the hot-path benchmarks (matching, broker dispatch, journal
# append) and emits $(BENCH_OUT); benchjson fails the target when the
# flight recorder's dispatch overhead exceeds its 5% budget. The bench
# regex deliberately skips DispatchScaling — its simulated service time
# would dwarf the 50000x hot-path runs; bench-dispatch covers it.
bench: bench-dispatch
	$(GO) test ./internal/matching/ ./internal/broker/ ./internal/journal/ \
		-run '^$$' -bench 'PRT|SRT|Journal|Clock|BrokerDispatch' \
		-benchtime $(BENCH_TIME) -count $(BENCH_COUNT) \
		| tee bench.out.txt
	$(GO) run ./cmd/benchjson -out $(BENCH_OUT) bench.out.txt
	@echo "wrote $(BENCH_OUT)"

# bench-dispatch measures publication-dispatch throughput of the worker
# pipeline at widths 1/2/4/8 under the fig-8-style per-message service
# time and emits $(DISPATCH_OUT); benchjson exits non-zero unless
# Workers=4 beats Workers=1 by at least 2x.
bench-dispatch:
	$(GO) test ./internal/broker/ -run '^$$' -bench '^BenchmarkDispatchScaling$$' \
		-benchtime $(DISPATCH_TIME) -count $(DISPATCH_COUNT) \
		| tee bench-dispatch.out.txt
	$(GO) run ./cmd/benchjson -require-scaling -out $(DISPATCH_OUT) bench-dispatch.out.txt
	@echo "wrote $(DISPATCH_OUT)"

# audit records a mobility experiment to a JSONL journal, then replays it
# through the offline auditor; padres-audit exits non-zero on any
# violation of the paper's mobility properties, failing the target.
audit:
	$(GO) run ./cmd/experiments $(AUDIT_FLAGS) -journal $(AUDIT_JOURNAL)
	$(GO) run ./cmd/padres-audit $(AUDIT_JOURNAL)

ci: vet build race
